#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>

#include "common/logging.h"
#include "core/evaluator.h"
#include "core/query_groups.h"
#include "nn/adam.h"
#include "obs/journal.h"
#include "obs/profiler.h"
#include "serving/metrics.h"
#include "tensor/tape.h"

namespace halk::core {

using query::GroundedQuery;
using query::StructureId;

bool ModelSupportsStructure(const QueryModel& model, StructureId structure) {
  const query::QueryGraph g = query::MakeStructure(structure);
  for (const query::QueryNode& n : g.nodes()) {
    if (n.op == query::OpType::kUnion) continue;  // handled via DNF
    if (!model.Supports(n.op)) return false;
  }
  return true;
}

std::string TrainerOptionsFingerprint(const TrainerOptions& options) {
  std::ostringstream rendered;
  rendered << "steps=" << options.steps << ";batch_size=" << options.batch_size
           << ";num_negatives=" << options.num_negatives
           << ";learning_rate=" << options.learning_rate
           << ";queries_per_structure=" << options.queries_per_structure
           << ";seed=" << options.seed
           << ";eval_every=" << options.eval_every
           << ";eval_queries_per_structure="
           << options.eval_queries_per_structure << ";structures=";
  for (StructureId s : options.structures) {
    rendered << query::StructureName(s) << ",";
  }
  std::ostringstream out;
  out << std::hex << obs::Fnv1a64(rendered.str());
  return out.str();
}

Trainer::Trainer(QueryModel* model, const kg::KnowledgeGraph* graph,
                 const kg::NodeGrouping* grouping,
                 const TrainerOptions& options)
    : model_(model),
      graph_(graph),
      grouping_(grouping),
      options_(options),
      rng_(options.seed) {
  HALK_CHECK(model != nullptr);
  HALK_CHECK(graph != nullptr && graph->finalized());
  if (options_.structures.empty()) {
    options_.structures = query::TrainStructures();
  }
  for (StructureId s : options_.structures) {
    if (ModelSupportsStructure(*model_, s)) active_structures_.push_back(s);
  }
  HALK_CHECK(!active_structures_.empty())
      << "model " << model_->name() << " supports none of the structures";
}

Status Trainer::BuildPools() {
  if (pools_built_) return Status::OK();
  HALK_PROFILE_SCOPE("train/build_pools");
  query::QuerySampler sampler(graph_, options_.seed * 7919 + 13);
  for (StructureId s : active_structures_) {
    // The structure list may repeat entries to weight the training mix
    // (e.g. extra 1p passes, mirroring the benchmark protocols where
    // one-hop queries dominate); pools are shared across repeats.
    if (pools_.count(s) > 0) continue;
    HALK_ASSIGN_OR_RETURN(
        std::vector<GroundedQuery> pool,
        sampler.SampleMany(s, options_.queries_per_structure));
    std::vector<std::vector<float>> groups;
    if (grouping_ != nullptr) {
      groups.reserve(pool.size());
      for (const GroundedQuery& q : pool) {
        groups.push_back(QueryGroupVector(q.graph, *grouping_));
      }
    }
    pool_groups_[s] = std::move(groups);
    pools_[s] = std::move(pool);
  }
  pools_built_ = true;
  return Status::OK();
}

Status Trainer::BuildEvalPool() {
  if (!eval_pool_.empty()) return Status::OK();
  HALK_PROFILE_SCOPE("train/build_eval_pool");
  // Disjoint seed stream from BuildPools, so held-out queries never
  // coincide with the training pools by construction of the sampler.
  query::QuerySampler sampler(graph_, options_.seed * 31337 + 101);
  std::vector<StructureId> done;
  for (StructureId s : active_structures_) {
    if (std::find(done.begin(), done.end(), s) != done.end()) continue;
    done.push_back(s);
    HALK_ASSIGN_OR_RETURN(
        std::vector<GroundedQuery> pool,
        sampler.SampleMany(s, options_.eval_queries_per_structure));
    for (GroundedQuery& q : pool) eval_pool_.push_back(std::move(q));
  }
  return Status::OK();
}

const std::vector<GroundedQuery>& Trainer::Pool(StructureId structure) const {
  static const std::vector<GroundedQuery> kEmpty;
  auto it = pools_.find(structure);
  return it == pools_.end() ? kEmpty : it->second;
}

Result<TrainStats> Trainer::Train() {
  obs::Profiler& profiler = obs::Profiler::Global();
  const bool was_profiling = profiler.enabled();
  if (options_.profile) profiler.set_enabled(true);
  const bool profiling = profiler.enabled();
  // Phase times are diffed against this baseline so a pre-warmed profiler
  // (earlier Train calls, serving traffic) does not pollute the breakdown.
  const obs::ProfileSnapshot phase_baseline =
      profiling ? profiler.Snapshot() : obs::ProfileSnapshot();

  HALK_PROFILE_SCOPE("train");
  Status pools_status = BuildPools();
  if (!pools_status.ok()) {
    if (options_.profile && !was_profiling) profiler.set_enabled(false);
    return pools_status;
  }
  const bool eval_on = options_.eval_every > 0;
  if (eval_on) {
    Status eval_status = BuildEvalPool();
    if (!eval_status.ok()) {
      if (options_.profile && !was_profiling) profiler.set_enabled(false);
      return eval_status;
    }
  }
  const auto start = std::chrono::steady_clock::now();

  nn::Adam::Options adam_options;
  adam_options.lr = options_.learning_rate;
  nn::Adam optimizer(model_->Parameters(), adam_options);

  // Tape accounting only when someone consumes it: its per-op map upkeep
  // is cheap but not free, and silent always-on accounting would violate
  // the "pay only when observed" discipline the tracer set.
  const bool accounting_on =
      options_.journal != nullptr || options_.metrics != nullptr;
  std::optional<tensor::TapeAccounting> accounting;
  if (accounting_on) accounting.emplace();

  const std::string fingerprint = TrainerOptionsFingerprint(options_);
  if (options_.journal != nullptr) {
    obs::JsonLineBuilder header;
    header.Str("record", "header")
        .Int("schema_version", 1)
        .Str("model", model_->name())
        .Int("seed", static_cast<int64_t>(options_.seed))
        .Str("options_fingerprint", fingerprint)
        .Int("steps", options_.steps)
        .Int("batch_size", options_.batch_size)
        .Int("num_negatives", options_.num_negatives)
        .Num("learning_rate", static_cast<double>(options_.learning_rate))
        .Int("queries_per_structure", options_.queries_per_structure)
        .Int("eval_every", options_.eval_every);
    std::string structures;
    for (StructureId s : active_structures_) {
      if (!structures.empty()) structures += ",";
      structures += query::StructureName(s);
    }
    header.Str("structures", structures);
    options_.journal->Write(header);
  }

  const int64_t num_entities = model_->config().num_entities;
  TrainStats stats;
  double loss_sum = 0.0;
  // Tape totals at the start of the current step, for per-step deltas.
  tensor::TapeStats tape_before;

  for (int step = 0; step < options_.steps; ++step) {
    HALK_PROFILE_SCOPE("train/step");
    const auto step_start = std::chrono::steady_clock::now();
    if (accounting) tape_before = accounting->stats();
    const StructureId s = active_structures_[static_cast<size_t>(step) %
                                             active_structures_.size()];
    const std::vector<GroundedQuery>& pool = pools_[s];
    const std::vector<std::vector<float>>& groups = pool_groups_[s];

    std::vector<const query::QueryGraph*> graphs;
    LossBatch batch;
    graphs.reserve(static_cast<size_t>(options_.batch_size));
    {
      HALK_PROFILE_SCOPE("sample");
      for (int b = 0; b < options_.batch_size; ++b) {
        const size_t qi = static_cast<size_t>(rng_.UniformInt(pool.size()));
        const GroundedQuery& q = pool[qi];
        graphs.push_back(&q.graph);
        // Positive: uniform over the exact answer set.
        batch.positives.push_back(
            q.answers[static_cast<size_t>(rng_.UniformInt(q.answers.size()))]);
        // Negatives: uniform over non-answers (rejection sampling).
        std::vector<int64_t> negs;
        std::vector<float> neg_pen;
        negs.reserve(static_cast<size_t>(options_.num_negatives));
        for (int j = 0; j < options_.num_negatives; ++j) {
          int64_t e = 0;
          for (int tries = 0; tries < 16; ++tries) {
            e = static_cast<int64_t>(
                rng_.UniformInt(static_cast<uint64_t>(num_entities)));
            if (!std::binary_search(q.answers.begin(), q.answers.end(), e)) {
              break;
            }
          }
          negs.push_back(e);
          neg_pen.push_back(
              grouping_ == nullptr
                  ? 0.0f
                  : GroupPenalty(e, groups[qi], *grouping_));
        }
        batch.negatives.push_back(std::move(negs));
        batch.negative_penalty.push_back(std::move(neg_pen));
        batch.positive_penalty.push_back(
            grouping_ == nullptr
                ? 0.0f
                : GroupPenalty(batch.positives.back(), groups[qi],
                               *grouping_));
      }
    }

    EmbeddingBatch embedding;
    {
      HALK_PROFILE_SCOPE("embed");
      embedding = model_->EmbedQueries(graphs);
    }
    tensor::Tensor loss;
    {
      HALK_PROFILE_SCOPE("loss");
      loss = NegativeSamplingLoss(model_, embedding, batch);
    }
    {
      HALK_PROFILE_SCOPE("backward");
      optimizer.ZeroGrad();
      tensor::Backward(loss);
    }
    {
      HALK_PROFILE_SCOPE("adam");
      optimizer.Step();
    }

    stats.final_loss = static_cast<double>(loss.at(0));
    stats.grad_norm = optimizer.last_grad_norm();
    stats.update_norm = optimizer.last_update_norm();
    loss_sum += stats.final_loss;
    ++stats.steps;

    if (options_.journal != nullptr) {
      const tensor::TapeStats& tape = accounting->stats();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - step_start)
              .count();
      obs::JsonLineBuilder record;
      record.Str("record", "step")
          .Int("step", step + 1)
          .Str("structure", query::StructureName(s))
          .Num("loss", stats.final_loss)
          .Num("grad_norm", stats.grad_norm)
          .Num("update_norm", stats.update_norm)
          .Num("wall_ms", wall_ms)
          .Int("forward_ops", tape.forward_nodes - tape_before.forward_nodes)
          .Int("backward_ops",
               tape.backward_nodes - tape_before.backward_nodes)
          .Int("forward_flops",
               tape.forward_flops - tape_before.forward_flops)
          .Int("backward_flops",
               tape.backward_flops - tape_before.backward_flops)
          .Int("forward_bytes",
               tape.forward_bytes - tape_before.forward_bytes)
          .Int("peak_graph_bytes", tape.peak_graph_bytes);
      options_.journal->Write(record);
    }

    if (eval_on && (step + 1) % options_.eval_every == 0) {
      HALK_PROFILE_SCOPE("eval");
      Evaluator evaluator(model_);
      const Metrics metrics = evaluator.Evaluate(eval_pool_);
      if (options_.journal != nullptr) {
        obs::JsonLineBuilder record;
        record.Str("record", "eval")
            .Int("step", step + 1)
            .Num("mrr", metrics.mrr)
            .Num("hits1", metrics.hits1)
            .Num("hits3", metrics.hits3)
            .Num("hits10", metrics.hits10)
            .Int("num_queries", metrics.num_queries);
        options_.journal->Write(record);
      }
      if (options_.log_every > 0) {
        HALK_LOG(Info) << model_->name() << " eval @" << (step + 1)
                       << " mrr " << metrics.mrr << " hits@3 "
                       << metrics.hits3;
      }
    }

    if (options_.log_every > 0 && (step + 1) % options_.log_every == 0) {
      HALK_LOG(Info) << model_->name() << " step " << (step + 1) << "/"
                     << options_.steps << " structure "
                     << query::StructureName(s) << " loss "
                     << stats.final_loss;
    }
  }
  stats.mean_loss = stats.steps > 0 ? loss_sum / static_cast<double>(stats.steps) : 0.0;
  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  if (accounting) {
    const tensor::TapeStats& tape = accounting->stats();
    stats.forward_ops = tape.forward_nodes;
    stats.backward_ops = tape.backward_nodes;
    stats.forward_flops = tape.forward_flops;
    stats.backward_flops = tape.backward_flops;
    stats.peak_graph_bytes = tape.peak_graph_bytes;
    if (options_.metrics != nullptr) {
      serving::MetricsRegistry* registry = options_.metrics;
      registry->GetCounter("train.tape.forward_ops")
          ->Increment(tape.forward_nodes);
      registry->GetCounter("train.tape.backward_ops")
          ->Increment(tape.backward_nodes);
      registry->GetCounter("train.tape.forward_flops")
          ->Increment(tape.forward_flops);
      registry->GetCounter("train.tape.backward_flops")
          ->Increment(tape.backward_flops);
      registry->GetCounter("train.tape.forward_bytes")
          ->Increment(tape.forward_bytes);
      registry->GetCounter("train.tape.backward_bytes")
          ->Increment(tape.backward_bytes);
      registry->GetGauge("train.tape.peak_graph_bytes")
          ->Set(static_cast<double>(tape.peak_graph_bytes));
      registry->GetCounter("train.steps")->Increment(stats.steps);
      for (const auto& [op, bucket] : tape.forward) {
        registry->GetCounter("train.tape.ops", {{"op", op}, {"pass", "forward"}})
            ->Increment(bucket.count);
      }
      for (const auto& [op, bucket] : tape.backward) {
        registry
            ->GetCounter("train.tape.ops", {{"op", op}, {"pass", "backward"}})
            ->Increment(bucket.count);
      }
    }
  }

  if (profiling) {
    const obs::ProfileSnapshot now = profiler.Snapshot();
    auto phase_seconds = [&](const std::string& name) {
      const int64_t delta = now.TotalNs(name) - phase_baseline.TotalNs(name);
      return static_cast<double>(std::max<int64_t>(0, delta)) / 1e9;
    };
    stats.sample_seconds = phase_seconds("sample");
    stats.embed_seconds = phase_seconds("embed");
    stats.loss_seconds = phase_seconds("loss");
    stats.backward_seconds = phase_seconds("backward");
    stats.adam_seconds = phase_seconds("adam");
  }
  if (options_.profile && !was_profiling) profiler.set_enabled(false);
  return stats;
}

}  // namespace halk::core
