#include "core/trainer.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "core/query_groups.h"
#include "nn/adam.h"
#include "tensor/tape.h"

namespace halk::core {

using query::GroundedQuery;
using query::StructureId;

bool ModelSupportsStructure(const QueryModel& model, StructureId structure) {
  const query::QueryGraph g = query::MakeStructure(structure);
  for (const query::QueryNode& n : g.nodes()) {
    if (n.op == query::OpType::kUnion) continue;  // handled via DNF
    if (!model.Supports(n.op)) return false;
  }
  return true;
}

Trainer::Trainer(QueryModel* model, const kg::KnowledgeGraph* graph,
                 const kg::NodeGrouping* grouping,
                 const TrainerOptions& options)
    : model_(model),
      graph_(graph),
      grouping_(grouping),
      options_(options),
      rng_(options.seed) {
  HALK_CHECK(model != nullptr);
  HALK_CHECK(graph != nullptr && graph->finalized());
  if (options_.structures.empty()) {
    options_.structures = query::TrainStructures();
  }
  for (StructureId s : options_.structures) {
    if (ModelSupportsStructure(*model_, s)) active_structures_.push_back(s);
  }
  HALK_CHECK(!active_structures_.empty())
      << "model " << model_->name() << " supports none of the structures";
}

Status Trainer::BuildPools() {
  if (pools_built_) return Status::OK();
  query::QuerySampler sampler(graph_, options_.seed * 7919 + 13);
  for (StructureId s : active_structures_) {
    // The structure list may repeat entries to weight the training mix
    // (e.g. extra 1p passes, mirroring the benchmark protocols where
    // one-hop queries dominate); pools are shared across repeats.
    if (pools_.count(s) > 0) continue;
    HALK_ASSIGN_OR_RETURN(
        std::vector<GroundedQuery> pool,
        sampler.SampleMany(s, options_.queries_per_structure));
    std::vector<std::vector<float>> groups;
    if (grouping_ != nullptr) {
      groups.reserve(pool.size());
      for (const GroundedQuery& q : pool) {
        groups.push_back(QueryGroupVector(q.graph, *grouping_));
      }
    }
    pool_groups_[s] = std::move(groups);
    pools_[s] = std::move(pool);
  }
  pools_built_ = true;
  return Status::OK();
}

const std::vector<GroundedQuery>& Trainer::Pool(StructureId structure) const {
  static const std::vector<GroundedQuery> kEmpty;
  auto it = pools_.find(structure);
  return it == pools_.end() ? kEmpty : it->second;
}

Result<TrainStats> Trainer::Train() {
  HALK_RETURN_NOT_OK(BuildPools());
  const auto start = std::chrono::steady_clock::now();

  nn::Adam::Options adam_options;
  adam_options.lr = options_.learning_rate;
  nn::Adam optimizer(model_->Parameters(), adam_options);

  const int64_t num_entities = model_->config().num_entities;
  TrainStats stats;
  double loss_sum = 0.0;

  for (int step = 0; step < options_.steps; ++step) {
    const StructureId s = active_structures_[static_cast<size_t>(step) %
                                             active_structures_.size()];
    const std::vector<GroundedQuery>& pool = pools_[s];
    const std::vector<std::vector<float>>& groups = pool_groups_[s];

    std::vector<const query::QueryGraph*> graphs;
    LossBatch batch;
    graphs.reserve(static_cast<size_t>(options_.batch_size));
    for (int b = 0; b < options_.batch_size; ++b) {
      const size_t qi = static_cast<size_t>(rng_.UniformInt(pool.size()));
      const GroundedQuery& q = pool[qi];
      graphs.push_back(&q.graph);
      // Positive: uniform over the exact answer set.
      batch.positives.push_back(
          q.answers[static_cast<size_t>(rng_.UniformInt(q.answers.size()))]);
      // Negatives: uniform over non-answers (rejection sampling).
      std::vector<int64_t> negs;
      std::vector<float> neg_pen;
      negs.reserve(static_cast<size_t>(options_.num_negatives));
      for (int j = 0; j < options_.num_negatives; ++j) {
        int64_t e = 0;
        for (int tries = 0; tries < 16; ++tries) {
          e = static_cast<int64_t>(
              rng_.UniformInt(static_cast<uint64_t>(num_entities)));
          if (!std::binary_search(q.answers.begin(), q.answers.end(), e)) {
            break;
          }
        }
        negs.push_back(e);
        neg_pen.push_back(
            grouping_ == nullptr
                ? 0.0f
                : GroupPenalty(e, groups[qi], *grouping_));
      }
      batch.negatives.push_back(std::move(negs));
      batch.negative_penalty.push_back(std::move(neg_pen));
      batch.positive_penalty.push_back(
          grouping_ == nullptr
              ? 0.0f
              : GroupPenalty(batch.positives.back(), groups[qi], *grouping_));
    }

    EmbeddingBatch embedding = model_->EmbedQueries(graphs);
    tensor::Tensor loss = NegativeSamplingLoss(model_, embedding, batch);
    optimizer.ZeroGrad();
    tensor::Backward(loss);
    optimizer.Step();

    stats.final_loss = static_cast<double>(loss.at(0));
    loss_sum += stats.final_loss;
    ++stats.steps;
    if (options_.log_every > 0 && (step + 1) % options_.log_every == 0) {
      HALK_LOG(Info) << model_->name() << " step " << (step + 1) << "/"
                     << options_.steps << " structure "
                     << query::StructureName(s) << " loss "
                     << stats.final_loss;
    }
  }
  stats.mean_loss = stats.steps > 0 ? loss_sum / static_cast<double>(stats.steps) : 0.0;
  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

}  // namespace halk::core
