#ifndef HALK_CORE_OPERATOR_MODEL_H_
#define HALK_CORE_OPERATOR_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/arc.h"
#include "tensor/tensor.h"

namespace halk::kg {
class NodeGrouping;
}  // namespace halk::kg

namespace halk::core {

/// Per-operator evaluation interface of an arc-embedding model. Whereas
/// QueryModel::EmbedQueries embeds whole query graphs, this surface exposes
/// the individual batched operators, which is what the shared-graph
/// executor (plan/executor.h) needs: it evaluates a deduplicated compute
/// DAG node by node, batching same-operator nodes from many requests into
/// one call, so the operator boundary — not the query boundary — is the
/// unit of work.
///
/// Contract: every method is row-independent (row i of the output depends
/// only on row i of each input), so callers may assemble batches from
/// arbitrary rows of other operator results and the floats match a
/// whole-query evaluation bit for bit.
class OperatorModel {
 public:
  virtual ~OperatorModel() = default;

  /// Anchor entities as arcs; one row per entity.
  virtual ArcBatch EmbedAnchors(const std::vector<int64_t>& entities) = 0;

  /// Projection; `relations[i]` applies to row i.
  virtual ArcBatch Projection(const ArcBatch& input,
                              const std::vector<int64_t>& relations) = 0;

  /// Intersection. `z` holds one [B, d] constant group-similarity tensor
  /// per input (empty = all ones).
  virtual ArcBatch Intersection(const std::vector<ArcBatch>& inputs,
                                const std::vector<tensor::Tensor>& z) = 0;

  /// Difference; `inputs[0]` is the minuend.
  virtual ArcBatch Difference(const std::vector<ArcBatch>& inputs) = 0;

  virtual ArcBatch Negation(const ArcBatch& input) = 0;

  /// Grouping behind the intersection z factor; null disables it. The
  /// executor recomputes per-node group vectors with the same fold the
  /// model uses in EmbedQueries, so z stays bit-identical.
  virtual const kg::NodeGrouping* operator_grouping() const = 0;
};

}  // namespace halk::core

#endif  // HALK_CORE_OPERATOR_MODEL_H_
