#ifndef HALK_CORE_QUERY_GROUPS_H_
#define HALK_CORE_QUERY_GROUPS_H_

#include <vector>

#include "kg/groups.h"
#include "query/dag.h"

namespace halk::core {

/// Propagates the coarse-grained group information of Sec. II-A through a
/// grounded query DAG: anchors get their one-hot group vector, projection
/// follows the relation-based 3D group adjacency, intersection multiplies
/// elementwise (the paper's h_{U1} ⊙ ... ⊙ h_{Uk}), union takes the
/// elementwise max, difference keeps the minuend's groups (a superset of
/// the result's), and negation yields all groups (complements can fall
/// anywhere). Returns one multi-hot vector per node (empty for
/// unreachable nodes).
std::vector<std::vector<float>> NodeGroupVectors(
    const query::QueryGraph& query, const kg::NodeGrouping& grouping);

/// Group vector of the target node — h_{U_q} in the loss (Eq. 17).
std::vector<float> QueryGroupVector(const query::QueryGraph& query,
                                    const kg::NodeGrouping& grouping);

/// Group penalty ‖Relu(h_v − h_{U_q})‖₁ for entity `entity` (Eq. 17,
/// before the ξ weight): 1 when the entity's group is impossible for the
/// query per the group adjacency, 0 otherwise.
float GroupPenalty(int64_t entity, const std::vector<float>& query_groups,
                   const kg::NodeGrouping& grouping);

}  // namespace halk::core

#endif  // HALK_CORE_QUERY_GROUPS_H_
