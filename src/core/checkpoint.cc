#include "core/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/string_util.h"

namespace halk::core {

namespace {

constexpr char kMagic[8] = {'H', 'A', 'L', 'K', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(const uint8_t* data, size_t n, uint64_t seed) {
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Writer {
 public:
  explicit Writer(std::ofstream* out) : out_(out) {}

  template <typename T>
  void Pod(const T& value) {
    Raw(&value, sizeof(T));
  }

  void Raw(const void* data, size_t n) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(n));
    hash_ = Fnv1a(static_cast<const uint8_t*>(data), n, hash_);
  }

  uint64_t hash() const { return hash_; }

 private:
  std::ofstream* out_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class Reader {
 public:
  explicit Reader(std::ifstream* in) : in_(in) {}

  template <typename T>
  bool Pod(T* value) {
    return Raw(value, sizeof(T));
  }

  bool Raw(void* data, size_t n) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in_->good()) return false;
    hash_ = Fnv1a(static_cast<const uint8_t*>(data), n, hash_);
    return true;
  }

  uint64_t hash() const { return hash_; }

 private:
  std::ifstream* in_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void WriteConfig(Writer* w, const ModelConfig& c) {
  w->Pod(c.num_entities);
  w->Pod(c.num_relations);
  w->Pod(c.dim);
  w->Pod(c.hidden);
  w->Pod(c.rho);
  w->Pod(c.lambda);
  w->Pod(c.eta);
  w->Pod(c.gamma);
  w->Pod(c.xi);
  w->Pod(c.seed);
}

bool ReadConfig(Reader* r, ModelConfig* c) {
  return r->Pod(&c->num_entities) && r->Pod(&c->num_relations) &&
         r->Pod(&c->dim) && r->Pod(&c->hidden) && r->Pod(&c->rho) &&
         r->Pod(&c->lambda) && r->Pod(&c->eta) && r->Pod(&c->gamma) &&
         r->Pod(&c->xi) && r->Pod(&c->seed);
}

bool ConfigsMatch(const ModelConfig& a, const ModelConfig& b) {
  return a.num_entities == b.num_entities &&
         a.num_relations == b.num_relations && a.dim == b.dim &&
         a.hidden == b.hidden;
}

}  // namespace

Status SaveCheckpoint(const QueryModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  Writer w(&out);
  w.Raw(kMagic, sizeof(kMagic));
  w.Pod(kVersion);
  const std::string name = model.name();
  const uint32_t name_len = static_cast<uint32_t>(name.size());
  w.Pod(name_len);
  w.Raw(name.data(), name.size());
  WriteConfig(&w, model.config());

  const std::vector<tensor::Tensor> params = model.Parameters();
  const uint64_t num_tensors = params.size();
  w.Pod(num_tensors);
  for (const tensor::Tensor& p : params) {
    const uint64_t numel = static_cast<uint64_t>(p.numel());
    w.Pod(numel);
    w.Raw(p.data(), sizeof(float) * numel);
  }
  const uint64_t checksum = w.hash();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadCheckpoint(QueryModel* model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  Reader r(&in);
  char magic[8];
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("bad checkpoint magic: " + path);
  }
  uint32_t version = 0;
  if (!r.Pod(&version) || version != kVersion) {
    return Status::ParseError(
        StrFormat("unsupported checkpoint version %u", version));
  }
  uint32_t name_len = 0;
  if (!r.Pod(&name_len) || name_len > 256) {
    return Status::ParseError("bad model name length");
  }
  std::string name(name_len, '\0');
  if (!r.Raw(name.data(), name_len)) {
    return Status::ParseError("truncated checkpoint: " + path);
  }
  if (name != model->name()) {
    return Status::InvalidArgument("checkpoint is for model '" + name +
                                   "', not '" + model->name() + "'");
  }
  ModelConfig saved;
  if (!ReadConfig(&r, &saved)) {
    return Status::ParseError("truncated checkpoint config");
  }
  if (!ConfigsMatch(saved, model->config())) {
    return Status::InvalidArgument(
        "checkpoint configuration does not match the model");
  }

  std::vector<tensor::Tensor> params = model->Parameters();
  uint64_t num_tensors = 0;
  if (!r.Pod(&num_tensors) || num_tensors != params.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %llu tensors, model has %zu",
                  static_cast<unsigned long long>(num_tensors),
                  params.size()));
  }
  // Stage into buffers first: no partial mutation on failure.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t t = 0; t < params.size(); ++t) {
    uint64_t numel = 0;
    if (!r.Pod(&numel) ||
        numel != static_cast<uint64_t>(params[t].numel())) {
      return Status::InvalidArgument(
          StrFormat("tensor %zu shape mismatch", t));
    }
    staged[t].resize(static_cast<size_t>(numel));
    if (!r.Raw(staged[t].data(), sizeof(float) * numel)) {
      return Status::ParseError("truncated tensor data");
    }
  }
  const uint64_t computed = r.hash();
  uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in.good() || checksum != computed) {
    return Status::ParseError("checkpoint checksum mismatch: " + path);
  }
  for (size_t t = 0; t < params.size(); ++t) {
    std::copy(staged[t].begin(), staged[t].end(), params[t].data());
  }
  return Status::OK();
}

}  // namespace halk::core
