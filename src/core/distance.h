#ifndef HALK_CORE_DISTANCE_H_
#define HALK_CORE_DISTANCE_H_

#include <cstdint>
#include <vector>

#include "core/arc.h"

namespace halk::core {

/// Point-to-arc distance d = d_o + η·d_i of Eqs. (15)-(16), batched and
/// differentiable. `point` holds entity point angles [B, d]; the result is
/// [B]. Distances are chord lengths, so they are periodicity-safe:
///   d_o = 2ρ ‖ 1[outside] · min(|sin((θ−A_S)/2)|, |sin((θ−A_E)/2)|) ‖₁
///   d_i = 2ρ ‖ min(|sin((θ−A_c)/2)|, |sin((A_l/2ρ)/2)|) ‖₁
/// The outside indicator (chord-to-center exceeding the half-arc chord)
/// zeroes d_o for points inside the arc; it is treated as a constant in
/// backward (standard subgradient practice).
tensor::Tensor ArcDistance(const tensor::Tensor& point, const ArcBatch& arc,
                           float rho, float eta);

/// Tape-free scalar twin of ArcDistance for one (entity, arc) pair of raw
/// angle/length buffers of width `dim`; used for ranking all entities at
/// evaluation time. Kept consistent with the tensor version by tests.
float ArcPointDistance(const float* point_angles, const float* arc_center,
                       const float* arc_length, int64_t dim, float rho,
                       float eta);

/// Entity-independent per-dimension quantities of one arc, hoisted out of
/// a many-entity scan: endpoint angles and the half-width chord account
/// for half the trigonometry in ArcPointDistance yet never change across
/// entities. Computed with the same float expressions, so scans through
/// ArcConstants are bit-identical to the plain kernel.
struct ArcConstants {
  float rho = 1.0f;
  float eta = 0.0f;
  std::vector<float> a_s;          // start angle per dimension
  std::vector<float> a_e;          // end angle per dimension
  std::vector<float> center;       // center angle per dimension
  std::vector<float> half_width;   // half-arc chord per dimension
};

ArcConstants MakeArcConstants(const float* arc_center,
                              const float* arc_length, int64_t dim, float rho,
                              float eta);

/// Bound-aware scan kernel for top-k (requires rho > 0 and eta >= 0, so
/// every per-dimension term is non-negative and the partial sum is a lower
/// bound of the final distance). Returns the exact ArcPointDistance value
/// — bit-identical, same accumulation order — unless the partial sum
/// exceeds `bound` first, in which case it stops scanning dimensions and
/// returns that partial sum (some value > bound, <= the true distance).
/// Callers must treat any result > bound as "worse than bound" only.
float ArcPointDistanceBounded(const float* point_angles,
                              const ArcConstants& arc, float bound);

}  // namespace halk::core

#endif  // HALK_CORE_DISTANCE_H_
