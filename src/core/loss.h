#ifndef HALK_CORE_LOSS_H_
#define HALK_CORE_LOSS_H_

#include <vector>

#include "core/query_model.h"

namespace halk::core {

/// Per-batch training targets for the negative-sampling loss of Eq. (17).
struct LossBatch {
  /// One positive answer entity per batch row.
  std::vector<int64_t> positives;
  /// m negative (non-answer) entities per batch row.
  std::vector<std::vector<int64_t>> negatives;
  /// Group penalty ‖Relu(h_v − h_{U_q})‖₁ per row (0 when grouping is off);
  /// multiplied by ξ inside the loss.
  std::vector<float> positive_penalty;
  std::vector<std::vector<float>> negative_penalty;
};

/// Eq. (17):
///   L = −log σ(γ − d(v‖A_q) − ξ·pen(v))
///       − (1/m) Σ_i log σ(ξ·pen(v'_i) + d(v'_i‖A_q) − γ)
/// averaged over the batch, with −log σ(x) computed as softplus(−x).
tensor::Tensor NegativeSamplingLoss(QueryModel* model,
                                    const EmbeddingBatch& embedding,
                                    const LossBatch& batch);

}  // namespace halk::core

#endif  // HALK_CORE_LOSS_H_
