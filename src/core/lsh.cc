#include "core/lsh.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "core/distance.h"

namespace halk::core {

AngularLshIndex::AngularLshIndex(const float* angles, int64_t num_entities,
                                 int64_t dim, const Options& options)
    : num_entities_(num_entities),
      dim_(dim),
      options_(options),
      angles_(angles) {
  HALK_CHECK(angles != nullptr);
  HALK_CHECK_GT(num_entities, 0);
  HALK_CHECK_GT(dim, 0);
  HALK_CHECK_GT(options.num_tables, 0);
  HALK_CHECK_GT(options.bits_per_table, 0);
  HALK_CHECK_LE(options.bits_per_table, 20);

  Rng rng(options_.seed);
  planes_.resize(static_cast<size_t>(options_.num_tables));
  buckets_.resize(static_cast<size_t>(options_.num_tables));
  for (int t = 0; t < options_.num_tables; ++t) {
    planes_[static_cast<size_t>(t)].resize(
        static_cast<size_t>(options_.bits_per_table));
    for (auto& plane : planes_[static_cast<size_t>(t)]) {
      plane.resize(static_cast<size_t>(2 * dim_));
      for (float& c : plane) c = static_cast<float>(rng.Normal());
    }
    buckets_[static_cast<size_t>(t)].resize(
        size_t{1} << options_.bits_per_table);
  }
  for (int64_t e = 0; e < num_entities_; ++e) {
    std::vector<float> rect = ToRect(angles_ + e * dim_);
    for (int t = 0; t < options_.num_tables; ++t) {
      buckets_[static_cast<size_t>(t)][HashPoint(rect, t)].push_back(e);
    }
  }
}

std::vector<float> AngularLshIndex::ToRect(const float* angles) const {
  std::vector<float> rect(static_cast<size_t>(2 * dim_));
  for (int64_t i = 0; i < dim_; ++i) {
    rect[static_cast<size_t>(2 * i)] = std::cos(angles[i]);
    rect[static_cast<size_t>(2 * i + 1)] = std::sin(angles[i]);
  }
  return rect;
}

uint32_t AngularLshIndex::HashPoint(const std::vector<float>& rect,
                                    int table) const {
  uint32_t h = 0;
  const auto& planes = planes_[static_cast<size_t>(table)];
  for (size_t b = 0; b < planes.size(); ++b) {
    float dot = 0.0f;
    for (size_t i = 0; i < rect.size(); ++i) dot += planes[b][i] * rect[i];
    h = (h << 1) | (dot >= 0.0f ? 1u : 0u);
  }
  return h;
}

std::vector<int64_t> AngularLshIndex::Candidates(
    const float* center_angles) const {
  std::vector<float> rect = ToRect(center_angles);
  std::unordered_set<int64_t> seen;
  for (int t = 0; t < options_.num_tables; ++t) {
    for (int64_t e : buckets_[static_cast<size_t>(t)][HashPoint(rect, t)]) {
      seen.insert(e);
    }
  }
  return {seen.begin(), seen.end()};
}

std::vector<int64_t> AngularLshIndex::TopK(const float* arc_center,
                                           const float* arc_length,
                                           int64_t k, float rho,
                                           float eta) const {
  k = std::min(k, num_entities_);
  std::vector<int64_t> candidates = Candidates(arc_center);
  if (static_cast<int64_t>(candidates.size()) < 4 * k) {
    // Too few candidates to trust; exact fallback.
    candidates.resize(static_cast<size_t>(num_entities_));
    std::iota(candidates.begin(), candidates.end(), 0);
  }
  last_scan_fraction_ = static_cast<double>(candidates.size()) /
                        static_cast<double>(num_entities_);
  std::vector<std::pair<float, int64_t>> scored;
  scored.reserve(candidates.size());
  for (int64_t e : candidates) {
    scored.emplace_back(
        ArcPointDistance(angles_ + e * dim_, arc_center, arc_length, dim_,
                         rho, eta),
        e);
  }
  const size_t kk = static_cast<size_t>(k);
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<long>(std::min(kk, scored.size())),
                    scored.end());
  std::vector<int64_t> out;
  out.reserve(kk);
  for (size_t i = 0; i < std::min(kk, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace halk::core
