#include "core/loss.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace halk::core {

using tensor::Tensor;

Tensor NegativeSamplingLoss(QueryModel* model, const EmbeddingBatch& embedding,
                            const LossBatch& batch) {
  const int64_t b = embedding.a.shape().dim(0);
  HALK_CHECK_EQ(static_cast<int64_t>(batch.positives.size()), b);
  HALK_CHECK_EQ(static_cast<int64_t>(batch.negatives.size()), b);
  HALK_CHECK_EQ(static_cast<int64_t>(batch.positive_penalty.size()), b);
  const size_t m = batch.negatives[0].size();
  HALK_CHECK_GT(m, 0u);

  const float gamma = model->config().gamma;
  const float xi = model->config().xi;

  // Positive term: softplus(-(γ - d_pos - ξ·pen_pos)).
  Tensor d_pos = model->Distance(batch.positives, embedding);
  std::vector<float> pos_pen(batch.positive_penalty);
  for (float& p : pos_pen) p *= xi;
  Tensor pos_arg = tensor::Sub(
      tensor::AddScalar(tensor::Neg(d_pos), gamma),
      Tensor::FromVector({b}, std::move(pos_pen)));
  Tensor loss = tensor::Softplus(tensor::Neg(pos_arg));

  // Negative terms: mean over m of softplus(-(d_neg + ξ·pen_neg - γ)).
  Tensor neg_sum;
  for (size_t j = 0; j < m; ++j) {
    std::vector<int64_t> entities(static_cast<size_t>(b));
    std::vector<float> pen(static_cast<size_t>(b), 0.0f);
    for (int64_t i = 0; i < b; ++i) {
      HALK_CHECK_EQ(batch.negatives[static_cast<size_t>(i)].size(), m);
      entities[static_cast<size_t>(i)] =
          batch.negatives[static_cast<size_t>(i)][j];
      pen[static_cast<size_t>(i)] =
          xi * batch.negative_penalty[static_cast<size_t>(i)][j];
    }
    Tensor d_neg = model->Distance(entities, embedding);
    Tensor neg_arg = tensor::AddScalar(
        tensor::Add(d_neg, Tensor::FromVector({b}, std::move(pen))), -gamma);
    Tensor term = tensor::Softplus(tensor::Neg(neg_arg));
    neg_sum = neg_sum.defined() ? tensor::Add(neg_sum, term) : term;
  }
  loss = tensor::Add(
      loss, tensor::MulScalar(neg_sum, 1.0f / static_cast<float>(m)));
  return tensor::MeanAll(loss);
}

}  // namespace halk::core
