#include "core/halk_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/distance.h"
#include "core/entity_source.h"
#include "core/query_groups.h"
#include "nn/attention.h"
#include "nn/init.h"

namespace halk::core {

using tensor::Tensor;

namespace {
constexpr float kPi = 3.14159265358979f;
constexpr float kTwoPi = 2.0f * kPi;
}  // namespace

HalkModel::HalkModel(const ModelConfig& config,
                     const kg::NodeGrouping* grouping,
                     const EntityScanSource* entity_source)
    : QueryModel(config),
      grouping_(grouping),
      entity_source_(entity_source),
      rng_(config.seed) {
  HALK_CHECK_GT(config.num_entities, 0);
  HALK_CHECK_GT(config.num_relations, 0);
  const int64_t d = config.dim;
  const int64_t h = config.hidden;

  if (entity_source_ != nullptr) {
    // Store-backed: the [N, d] table stays in the external source. Skipping
    // its allocation (and its RNG draws) means the remaining tables init
    // differently from an equally-seeded in-RAM model — irrelevant in
    // practice, since store-backed models load every operator weight from
    // the snapshot's params blob.
    HALK_CHECK_EQ(entity_source_->num_entities(), config.num_entities);
    HALK_CHECK_EQ(entity_source_->dim(), d);
  } else {
    entity_angles_ = Tensor::Zeros({config.num_entities, d});
    nn::UniformInit(&entity_angles_, 0.0f, kTwoPi, &rng_);
    entity_angles_.set_requires_grad(true);
  }

  rel_center_ = Tensor::Zeros({config.num_relations, d});
  nn::UniformInit(&rel_center_, -kPi, kPi, &rng_);
  rel_center_.set_requires_grad(true);

  // Arcs start near-degenerate (points): wide initial arcs let the loss
  // collapse by swallowing positives without learning precise centers.
  rel_length_ = Tensor::Zeros({config.num_relations, d});
  nn::UniformInit(&rel_length_, 0.0f, 0.02f, &rng_);
  rel_length_.set_requires_grad(true);

  proj_center_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d},
                                           &rng_);
  proj_length_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d},
                                           &rng_);
  // Residual correction heads start at exactly zero so the operator is a
  // pure relation rotation at step 0 (random ±π corrections would scramble
  // the rotation geometry and prevent it from ever forming).
  proj_center_->ZeroInitFinalLayer();
  proj_length_->ZeroInitFinalLayer();

  diff_att_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d},
                                        &rng_);
  // κ privileges the minuend so the semantic center stays inside A_1.
  kappa_first_ = Tensor::Full({d}, 1.5f).set_requires_grad(true);
  kappa_rest_ = Tensor::Full({d}, 0.5f).set_requires_grad(true);
  diff_sets_ = std::make_unique<nn::DeepSets>(std::vector<int64_t>{2 * d, h},
                                              std::vector<int64_t>{h, d},
                                              &rng_);

  inter_att_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d},
                                         &rng_);
  inter_sets_ = std::make_unique<nn::DeepSets>(std::vector<int64_t>{2 * d, h},
                                               std::vector<int64_t>{h, d},
                                               &rng_);

  neg_t1_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{d, h}, &rng_);
  neg_t2_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{d, h}, &rng_);
  neg_center_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * h, d},
                                          &rng_);
  neg_length_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * h, d},
                                          &rng_);
  neg_center_->ZeroInitFinalLayer();
  neg_length_->ZeroInitFinalLayer();
}

ArcBatch HalkModel::EmbedAnchors(const std::vector<int64_t>& entities) {
  Tensor center = GatherEntityRows(entities);
  Tensor length =
      Tensor::Zeros({static_cast<int64_t>(entities.size()), config_.dim});
  return {center, length};
}

Tensor HalkModel::GatherEntityRows(const std::vector<int64_t>& entities) const {
  if (entity_source_ == nullptr) {
    return tensor::Gather(entity_angles_, entities);
  }
  // Store-backed lookup: bit-exact rows copied out of the source. No
  // autograd edge — serving only.
  const int64_t d = config_.dim;
  Tensor out = Tensor::Zeros({static_cast<int64_t>(entities.size()), d});
  for (size_t i = 0; i < entities.size(); ++i) {
    entity_source_->CopyRow(entities[i],
                            out.data() + static_cast<int64_t>(i) * d);
  }
  return out;
}

ArcBatch HalkModel::Projection(const ArcBatch& input,
                               const std::vector<int64_t>& relations) {
  // Rotate by the relation arc to get the approximate result arc.
  Tensor r_center = tensor::Gather(rel_center_, relations);
  Tensor r_length = tensor::Gather(rel_length_, relations);
  ArcBatch approx{tensor::Add(input.center, r_center),
                  tensor::Add(input.length, r_length)};
  // Adjust start and end points cooperatively (Eq. 2), parameterized as a
  // bounded residual around the rotation: the MLP (fed the coordinated
  // [A_S ‖ A_E] pair) rotates the center by up to ±π·tanh(λ·) and rescales
  // the arclength by a sigmoid factor in (0, 2). At initialization this is
  // a near-pure rotation, which keeps the operator trainable at CPU scale
  // while preserving Eq. (2)'s joint center/cardinality adjustment.
  Tensor pair = StartEndPair(approx, config_.rho);
  Tensor center = tensor::Mod2Pi(tensor::Add(
      approx.center,
      tensor::MulScalar(
          tensor::Tanh(tensor::MulScalar(proj_center_->Forward(pair),
                                         config_.lambda)),
          kPi)));
  Tensor length = tensor::Clamp(
      tensor::Add(approx.length,
                  tensor::MulScalar(
                      tensor::Tanh(proj_length_->Forward(pair)),
                      kPi / 4.0f)),
      0.0f, kTwoPi * config_.rho);
  return {center, length};
}

Tensor HalkModel::SemanticAverageCenter(
    const std::vector<ArcBatch>& inputs,
    const std::vector<Tensor>& scores) const {
  std::vector<Tensor> weights = nn::SoftmaxAcross(scores);
  Tensor x_sa;
  Tensor y_sa;
  for (size_t i = 0; i < inputs.size(); ++i) {
    // Rectangular coordinates avoid the periodic averaging problem (Eq. 4).
    Tensor x = tensor::MulScalar(tensor::Cos(inputs[i].center), config_.rho);
    Tensor y = tensor::MulScalar(tensor::Sin(inputs[i].center), config_.rho);
    Tensor wx = tensor::Mul(weights[i], x);
    Tensor wy = tensor::Mul(weights[i], y);
    x_sa = x_sa.defined() ? tensor::Add(x_sa, wx) : wx;
    y_sa = y_sa.defined() ? tensor::Add(y_sa, wy) : wy;
  }
  // atan2 + wrap implements arctan(y/x) with the Reg(·) quadrant fix of
  // Eq. (6) in one differentiable step.
  return tensor::Mod2Pi(tensor::Atan2(y_sa, x_sa));
}

ArcBatch HalkModel::Difference(const std::vector<ArcBatch>& inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  // Attention scores with the hard-coded minuend asymmetry κ (Eq. 7).
  std::vector<Tensor> scores;
  scores.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor base = diff_att_->Forward(StartEndPair(inputs[i], config_.rho));
    const Tensor& kappa = (i == 0) ? kappa_first_ : kappa_rest_;
    scores.push_back(tensor::Mul(base, kappa));
  }
  Tensor center = SemanticAverageCenter(inputs, scores);

  // Arclength with the cardinality constraint (Eqs. 8-9): chord-length
  // overlap features against the minuend, DeepSets, sigmoid shrink factor.
  std::vector<Tensor> overlap_features;
  for (size_t j = 1; j < inputs.size(); ++j) {
    Tensor delta_c = tensor::MulScalar(
        tensor::Sin(tensor::MulScalar(
            tensor::Sub(inputs[0].center, inputs[j].center), 0.5f)),
        2.0f * config_.rho);
    Tensor delta_l = tensor::Sub(inputs[0].length, inputs[j].length);
    overlap_features.push_back(tensor::Concat({delta_c, delta_l}, 1));
  }
  Tensor shrink = tensor::Sigmoid(diff_sets_->Forward(overlap_features));
  Tensor length = tensor::Mul(inputs[0].length, shrink);
  return {center, length};
}

ArcBatch HalkModel::Intersection(const std::vector<ArcBatch>& inputs,
                                 const std::vector<Tensor>& z) {
  HALK_CHECK_GE(inputs.size(), 2u);
  HALK_CHECK(z.empty() || z.size() == inputs.size());
  // Attention scores scaled by group similarity (Eq. 10).
  std::vector<Tensor> scores;
  scores.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor base = inter_att_->Forward(StartEndPair(inputs[i], config_.rho));
    scores.push_back(z.empty() ? base : tensor::Mul(z[i], base));
  }
  Tensor center = SemanticAverageCenter(inputs, scores);

  // Arclength: min of input arc angles shrunk by a permutation-invariant
  // influence factor (Eqs. 11-12).
  Tensor min_alpha =
      tensor::MulScalar(inputs[0].length, 1.0f / config_.rho);
  for (size_t i = 1; i < inputs.size(); ++i) {
    min_alpha = tensor::Minimum(
        min_alpha, tensor::MulScalar(inputs[i].length, 1.0f / config_.rho));
  }
  std::vector<Tensor> pairs;
  pairs.reserve(inputs.size());
  for (const ArcBatch& in : inputs) {
    pairs.push_back(StartEndPair(in, config_.rho));
  }
  Tensor shrink = tensor::Sigmoid(inter_sets_->Forward(pairs));
  Tensor alpha = tensor::Mul(min_alpha, shrink);
  return {center, tensor::MulScalar(alpha, config_.rho)};
}

ArcBatch HalkModel::Negation(const ArcBatch& input) {
  // Linear antipodal initialization (Eq. 13): center flipped by π, length
  // complemented to the full circle.
  Tensor approx_center =
      tensor::Mod2Pi(tensor::AddScalar(input.center, kPi));
  Tensor approx_length = tensor::AddScalar(tensor::Neg(input.length),
                                           kTwoPi * config_.rho);
  Tensor approx_alpha =
      tensor::MulScalar(approx_length, 1.0f / config_.rho);

  // Non-linear correction (Eq. 14), as a bounded residual around the
  // antipodal initialization (same parameterization rationale as
  // Projection).
  Tensor t1 = neg_t1_->Forward(approx_center);
  Tensor t2 = neg_t2_->Forward(approx_alpha);
  Tensor cat = tensor::Concat({t1, t2}, 1);
  Tensor center = tensor::Mod2Pi(tensor::Add(
      approx_center,
      tensor::MulScalar(
          tensor::Tanh(tensor::MulScalar(neg_center_->Forward(cat),
                                         config_.lambda)),
          kPi)));
  Tensor length = tensor::Clamp(
      tensor::Add(approx_length,
                  tensor::MulScalar(tensor::Tanh(neg_length_->Forward(cat)),
                                    kPi / 4.0f)),
      0.0f, kTwoPi * config_.rho);
  return {center, length};
}

EmbeddingBatch HalkModel::EmbedQueries(
    const std::vector<const query::QueryGraph*>& queries) {
  HALK_CHECK(!queries.empty());
  const query::QueryGraph& proto = *queries[0];
  const int64_t batch = static_cast<int64_t>(queries.size());
  for (const query::QueryGraph* q : queries) {
    HALK_CHECK_EQ(q->num_nodes(), proto.num_nodes())
        << "EmbedQueries requires same-structure queries";
  }

  // Group vectors per query per node, for the intersection z factors.
  std::vector<std::vector<std::vector<float>>> groups;
  if (grouping_ != nullptr) {
    groups.reserve(queries.size());
    for (const query::QueryGraph* q : queries) {
      groups.push_back(NodeGroupVectors(*q, *grouping_));
    }
  }

  std::vector<ArcBatch> node_arcs(static_cast<size_t>(proto.num_nodes()));
  for (int id : proto.TopologicalOrder()) {
    const query::QueryNode& n = proto.nodes()[static_cast<size_t>(id)];
    switch (n.op) {
      case query::OpType::kAnchor: {
        std::vector<int64_t> entities;
        entities.reserve(queries.size());
        for (const query::QueryGraph* q : queries) {
          entities.push_back(
              q->nodes()[static_cast<size_t>(id)].anchor_entity);
        }
        node_arcs[static_cast<size_t>(id)] = EmbedAnchors(entities);
        break;
      }
      case query::OpType::kProjection: {
        std::vector<int64_t> relations;
        relations.reserve(queries.size());
        for (const query::QueryGraph* q : queries) {
          relations.push_back(q->nodes()[static_cast<size_t>(id)].relation);
        }
        node_arcs[static_cast<size_t>(id)] = Projection(
            node_arcs[static_cast<size_t>(n.inputs[0])], relations);
        break;
      }
      case query::OpType::kIntersection: {
        std::vector<ArcBatch> inputs;
        for (int in : n.inputs) {
          inputs.push_back(node_arcs[static_cast<size_t>(in)]);
        }
        std::vector<Tensor> z;
        if (grouping_ != nullptr) {
          for (int in : n.inputs) {
            std::vector<float> tiled(
                static_cast<size_t>(batch * config_.dim));
            for (int64_t b = 0; b < batch; ++b) {
              const float zi = kg::NodeGrouping::Similarity(
                  groups[static_cast<size_t>(b)][static_cast<size_t>(in)],
                  groups[static_cast<size_t>(b)][static_cast<size_t>(id)]);
              for (int64_t c = 0; c < config_.dim; ++c) {
                tiled[static_cast<size_t>(b * config_.dim + c)] = zi;
              }
            }
            z.push_back(Tensor::FromVector({batch, config_.dim},
                                           std::move(tiled)));
          }
        }
        node_arcs[static_cast<size_t>(id)] = Intersection(inputs, z);
        break;
      }
      case query::OpType::kDifference: {
        std::vector<ArcBatch> inputs;
        for (int in : n.inputs) {
          inputs.push_back(node_arcs[static_cast<size_t>(in)]);
        }
        node_arcs[static_cast<size_t>(id)] = Difference(inputs);
        break;
      }
      case query::OpType::kNegation:
        node_arcs[static_cast<size_t>(id)] =
            Negation(node_arcs[static_cast<size_t>(n.inputs[0])]);
        break;
      case query::OpType::kUnion:
        HALK_CHECK(false)
            << "union must be lifted out by ToDnf before embedding";
        break;
    }
  }
  const ArcBatch& target = node_arcs[static_cast<size_t>(proto.target())];
  return {target.center, target.length};
}

Tensor HalkModel::Distance(const std::vector<int64_t>& entities,
                           const EmbeddingBatch& embedding) {
  Tensor points = GatherEntityRows(entities);
  return ArcDistance(points, {embedding.a, embedding.b}, config_.rho,
                     config_.eta);
}

void HalkModel::DistancesToAll(const EmbeddingBatch& embedding, int64_t row,
                               std::vector<float>* out) const {
  DistancesToRange(embedding, row, 0, config_.num_entities, out);
}

void HalkModel::DistancesToRange(const EmbeddingBatch& embedding, int64_t row,
                                 int64_t begin, int64_t end,
                                 std::vector<float>* out) const {
  const int64_t d = config_.dim;
  const float* center = embedding.a.data() + row * d;
  const float* length = embedding.b.data() + row * d;
  out->resize(static_cast<size_t>(end - begin));
  if (entity_source_ != nullptr) {
    std::vector<float> point(static_cast<size_t>(d));
    for (int64_t e = begin; e < end; ++e) {
      entity_source_->CopyRow(e, point.data());
      (*out)[static_cast<size_t>(e - begin)] = ArcPointDistance(
          point.data(), center, length, d, config_.rho, config_.eta);
    }
    return;
  }
  const float* table = entity_angles_.data();
  for (int64_t e = begin; e < end; ++e) {
    (*out)[static_cast<size_t>(e - begin)] = ArcPointDistance(
        table + e * d, center, length, d, config_.rho, config_.eta);
  }
}

double HalkModel::MembershipThreshold(const EmbeddingBatch& embedding,
                                      int64_t row) const {
  const float rho = config_.rho;
  const float eta = config_.eta;
  if (rho <= 0.0f || eta < 0.0f) return -1.0;
  const float* length = embedding.b.data() + row * config_.dim;
  // Same per-dimension float expression as ArcPointDistance's half_width,
  // so the bound is consistent with the distances it is compared against.
  double tau = 0.0;
  for (int64_t i = 0; i < config_.dim; ++i) {
    tau += 2.0f * rho * std::fabs(std::sin(length[i] / (4.0f * rho)));
  }
  return static_cast<double>(eta) * tau;
}

void HalkModel::AccumulateTopKRange(const std::vector<BranchRef>& branches,
                                    int64_t begin, int64_t end,
                                    TopKAccumulator* acc,
                                    ScanStats* stats) const {
  // Early exit is only a lower-bound argument when every per-dimension
  // term is non-negative.
  if (config_.rho <= 0.0f || config_.eta < 0.0f) {
    QueryModel::AccumulateTopKRange(branches, begin, end, acc, stats);
    return;
  }
  const int64_t d = config_.dim;
  // Endpoint angles and half-width chords are entity-independent: hoist
  // them out of the scan (half the trigonometry of the plain kernel).
  std::vector<ArcConstants> arcs;
  arcs.reserve(branches.size());
  for (const BranchRef& branch : branches) {
    arcs.push_back(MakeArcConstants(
        branch.embedding->a.data() + branch.row * d,
        branch.embedding->b.data() + branch.row * d, d, config_.rho,
        config_.eta));
  }
  if (entity_source_ != nullptr) {
    // Out-of-core scan: the source prunes against the same admission bound
    // and is contractually exact, so results are bit-identical to the
    // in-RAM kernel below (tests/store pins this down).
    entity_source_->AccumulateTopKRange(arcs, begin, end, acc, stats);
    return;
  }
  const float* table = entity_angles_.data();
  for (int64_t e = begin; e < end; ++e) {
    const float* point = table + e * d;
    const float admission = acc->bound();
    float dmin = std::numeric_limits<float>::infinity();
    for (const ArcConstants& arc : arcs) {
      // A branch only has to beat the best branch so far or the admission
      // bound, whichever is tighter; anything above that cap cannot change
      // the outcome, so its exact value is irrelevant.
      const float cap = std::min(dmin, admission);
      dmin = std::min(dmin, ArcPointDistanceBounded(point, arc, cap));
    }
    // dmin <= admission implies some branch finished its scan, so dmin is
    // the exact minimum; above the bound the entity cannot enter anyway.
    if (dmin <= admission) {
      acc->Push(e, dmin);
    } else if (stats != nullptr) {
      ++stats->entities_pruned;
    }
  }
  if (stats != nullptr) stats->entities_scanned += end - begin;
}

std::vector<Tensor> HalkModel::Parameters() const {
  // Store-backed models have no in-RAM entity table: Parameters() is then
  // exactly the params-blob tensor list (store/writer.h).
  std::vector<Tensor> out;
  if (entity_source_ == nullptr) out.push_back(entity_angles_);
  out.push_back(rel_center_);
  out.push_back(rel_length_);
  out.push_back(kappa_first_);
  out.push_back(kappa_rest_);
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(proj_center_.get()),
        static_cast<const nn::Module*>(proj_length_.get()),
        static_cast<const nn::Module*>(diff_att_.get()),
        static_cast<const nn::Module*>(diff_sets_.get()),
        static_cast<const nn::Module*>(inter_att_.get()),
        static_cast<const nn::Module*>(inter_sets_.get()),
        static_cast<const nn::Module*>(neg_t1_.get()),
        static_cast<const nn::Module*>(neg_t2_.get()),
        static_cast<const nn::Module*>(neg_center_.get()),
        static_cast<const nn::Module*>(neg_length_.get())}) {
    for (const Tensor& p : m->Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<ArcBatch> HalkModel::EmbedAllNodes(
    const query::QueryGraph& query) {
  std::vector<ArcBatch> node_arcs(static_cast<size_t>(query.num_nodes()));
  std::vector<const query::QueryGraph*> single = {&query};
  // Re-run the batched path with B = 1, capturing intermediates.
  // (EmbedQueries discards them, so this mirrors its dispatch.)
  std::vector<std::vector<float>> groups;
  if (grouping_ != nullptr) groups = NodeGroupVectors(query, *grouping_);
  for (int id : query.TopologicalOrder()) {
    const query::QueryNode& n = query.nodes()[static_cast<size_t>(id)];
    switch (n.op) {
      case query::OpType::kAnchor:
        node_arcs[static_cast<size_t>(id)] =
            EmbedAnchors({n.anchor_entity});
        break;
      case query::OpType::kProjection:
        node_arcs[static_cast<size_t>(id)] = Projection(
            node_arcs[static_cast<size_t>(n.inputs[0])], {n.relation});
        break;
      case query::OpType::kIntersection: {
        std::vector<ArcBatch> inputs;
        std::vector<Tensor> z;
        for (int in : n.inputs) {
          inputs.push_back(node_arcs[static_cast<size_t>(in)]);
          if (grouping_ != nullptr) {
            const float zi = kg::NodeGrouping::Similarity(
                groups[static_cast<size_t>(in)],
                groups[static_cast<size_t>(id)]);
            z.push_back(Tensor::Full({1, config_.dim}, zi));
          }
        }
        node_arcs[static_cast<size_t>(id)] = Intersection(inputs, z);
        break;
      }
      case query::OpType::kDifference: {
        std::vector<ArcBatch> inputs;
        for (int in : n.inputs) {
          inputs.push_back(node_arcs[static_cast<size_t>(in)]);
        }
        node_arcs[static_cast<size_t>(id)] = Difference(inputs);
        break;
      }
      case query::OpType::kNegation:
        node_arcs[static_cast<size_t>(id)] =
            Negation(node_arcs[static_cast<size_t>(n.inputs[0])]);
        break;
      case query::OpType::kUnion: {
        // For pruning we over-approximate a union node by the input with
        // the larger arclength (candidates are unioned downstream anyway).
        node_arcs[static_cast<size_t>(id)] =
            node_arcs[static_cast<size_t>(n.inputs[0])];
        break;
      }
    }
  }
  return node_arcs;
}

}  // namespace halk::core
