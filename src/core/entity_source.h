#ifndef HALK_CORE_ENTITY_SOURCE_H_
#define HALK_CORE_ENTITY_SOURCE_H_

#include <cstdint>
#include <vector>

#include "core/distance.h"
#include "core/query_model.h"
#include "core/topk.h"

namespace halk::core {

/// Read-only provider of the entity embedding table. A model built with one
/// serves ranking out of the source instead of an in-RAM tensor — the hook
/// the mmap-backed store (src/store/) plugs into without core depending on
/// the storage layer.
///
/// Contract: the source holds rows for entity ids [0, num_entities), each
/// `dim` floats wide, and the rows are immutable for the source's lifetime.
/// All methods must be safe to call concurrently from many threads (shard
/// workers scan disjoint ranges of one source in parallel).
class EntityScanSource {
 public:
  virtual ~EntityScanSource() = default;

  virtual int64_t num_entities() const = 0;
  virtual int64_t dim() const = 0;

  /// Copies entity's row (`dim()` floats) into `out`. Bit-exact: the floats
  /// are the stored values, so embeddings built from them match an in-RAM
  /// table holding the same rows.
  virtual void CopyRow(int64_t entity, float* out) const = 0;

  /// Streams entities [begin, end) into `acc`, scoring each by its minimum
  /// arc distance over `arcs` (the DNF union semantics). Must be exact:
  /// acc->Take() afterwards equals pushing every entity's full
  /// min-over-arcs ArcPointDistance — the same guarantee
  /// QueryModel::AccumulateTopKRange documents, so a source-backed model is
  /// bit-identical to the in-RAM scan at any shard partition. Only called
  /// with rho > 0 and eta >= 0 (per-dimension terms non-negative), so
  /// implementations may prune against acc->bound(). `stats` (optional)
  /// receives scan counters.
  virtual void AccumulateTopKRange(const std::vector<ArcConstants>& arcs,
                                   int64_t begin, int64_t end,
                                   TopKAccumulator* acc,
                                   ScanStats* stats) const = 0;
};

}  // namespace halk::core

#endif  // HALK_CORE_ENTITY_SOURCE_H_
