#include "core/topk.h"

#include <algorithm>
#include <queue>

namespace halk::core {

TopKAccumulator::TopKAccumulator(int64_t k) : k_(k) {
  if (k_ > 0) heap_.reserve(static_cast<size_t>(k_));
}

void TopKAccumulator::Push(int64_t entity, float distance) {
  if (k_ <= 0) return;
  const ScoredEntity candidate{entity, distance};
  if (static_cast<int64_t>(heap_.size()) < k_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), ScoredBefore);
    return;
  }
  // Full: the heap front is the current worst kept entry.
  if (!ScoredBefore(candidate, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), ScoredBefore);
  heap_.back() = candidate;
  std::push_heap(heap_.begin(), heap_.end(), ScoredBefore);
}

std::vector<ScoredEntity> TopKAccumulator::Take() {
  std::sort(heap_.begin(), heap_.end(), ScoredBefore);
  return std::move(heap_);
}

std::vector<ScoredEntity> TopKFromDistances(const std::vector<float>& dist,
                                            int64_t k, int64_t first_entity) {
  TopKAccumulator acc(k);
  for (size_t i = 0; i < dist.size(); ++i) {
    acc.Push(first_entity + static_cast<int64_t>(i), dist[i]);
  }
  return acc.Take();
}

std::vector<ScoredEntity> MergeTopK(
    const std::vector<std::vector<ScoredEntity>>& partials, int64_t k) {
  // (entry, partial index, offset) min-heap over the heads of each list.
  struct Head {
    ScoredEntity entry;
    size_t list;
    size_t offset;
  };
  auto later = [](const Head& a, const Head& b) {
    return ScoredBefore(b.entry, a.entry);  // min-heap
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heads(later);
  for (size_t l = 0; l < partials.size(); ++l) {
    if (!partials[l].empty()) heads.push({partials[l][0], l, 0});
  }
  std::vector<ScoredEntity> out;
  if (k > 0) out.reserve(static_cast<size_t>(k));
  while (!heads.empty() && static_cast<int64_t>(out.size()) < k) {
    Head head = heads.top();
    heads.pop();
    out.push_back(head.entry);
    const std::vector<ScoredEntity>& list = partials[head.list];
    if (head.offset + 1 < list.size()) {
      heads.push({list[head.offset + 1], head.list, head.offset + 1});
    }
  }
  return out;
}

}  // namespace halk::core
