#ifndef HALK_CORE_LSH_H_
#define HALK_CORE_LSH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/arc.h"
#include "core/query_model.h"

namespace halk::core {

/// Locality-sensitive hashing over entity point embeddings (Sec. III-H:
/// "a range search in the low-dimensional vector space ... can be done in
/// constant time using search algorithms such as LSH").
///
/// Entity angles θ ∈ R^d are mapped to the 2d-dimensional rectangular
/// embedding (cos θ, sin θ) — where the paper's chord distance is the
/// plain Euclidean distance — and hashed with random hyperplanes (sign
/// bits). Candidates are gathered from the query's buckets across several
/// tables and re-ranked exactly, trading a small recall loss for a large
/// reduction in distance evaluations.
class AngularLshIndex {
 public:
  struct Options {
    int num_tables = 8;
    int bits_per_table = 10;
    uint64_t seed = 17;
  };

  /// Builds the index over `angles` (row-major [num_entities, dim]).
  AngularLshIndex(const float* angles, int64_t num_entities, int64_t dim,
                  const Options& options);

  /// Entities sharing at least one bucket with the query arc's center
  /// (deduplicated, unsorted). May be empty for an isolated query.
  std::vector<int64_t> Candidates(const float* center_angles) const;

  /// Top-k entities by exact arc distance, searching LSH candidates first
  /// and falling back to a full scan when candidates < 4k (quality guard).
  std::vector<int64_t> TopK(const float* arc_center, const float* arc_length,
                            int64_t k, float rho, float eta) const;

  /// Fraction of entities scanned by the last TopK call (diagnostics).
  double last_scan_fraction() const { return last_scan_fraction_; }

  int64_t num_entities() const { return num_entities_; }

 private:
  uint32_t HashPoint(const std::vector<float>& rect, int table) const;
  std::vector<float> ToRect(const float* angles) const;

  int64_t num_entities_;
  int64_t dim_;
  Options options_;
  // Hyperplanes: [table][bit][2*dim] coefficients.
  std::vector<std::vector<std::vector<float>>> planes_;
  // Buckets: per table, hash -> entity list.
  std::vector<std::vector<std::vector<int64_t>>> buckets_;
  const float* angles_;  // not owned; must outlive the index
  mutable double last_scan_fraction_ = 0.0;
};

}  // namespace halk::core

#endif  // HALK_CORE_LSH_H_
