#ifndef HALK_CORE_EVALUATOR_H_
#define HALK_CORE_EVALUATOR_H_

#include <vector>

#include "core/query_model.h"
#include "query/sampler.h"

namespace halk::core {

/// Ranking metrics of the paper's evaluation protocol.
struct Metrics {
  double mrr = 0.0;     // Mean Reciprocal Rank (as a fraction, not %)
  double hits1 = 0.0;   // Hits@1
  double hits3 = 0.0;   // Hits@3 (the paper's second headline metric)
  double hits10 = 0.0;  // Hits@10
  int64_t num_queries = 0;
  int64_t num_answers = 0;  // hard answers scored
};

/// Evaluates a trained model on grounded queries with the filtered-ranking
/// protocol: for each *hard* answer, its rank is 1 + the number of
/// non-answer entities scored strictly closer; metrics are averaged per
/// query and then across queries. Union queries are expanded with the DNF
/// rewrite and scored by minimum branch distance (Sec. III-F).
class Evaluator {
 public:
  explicit Evaluator(QueryModel* model);

  /// Scores queries whose easy/hard split has been prepared by
  /// SplitEasyHard (queries with no hard answers are skipped; if the split
  /// was never run, all answers count as hard).
  Metrics Evaluate(const std::vector<query::GroundedQuery>& queries);

  /// Distance from every entity to one grounded query (min over DNF
  /// branches). Exposed for the pruning study and examples.
  std::vector<float> ScoreAllEntities(const query::QueryGraph& query);

  /// The `k` entities closest to the query embedding.
  std::vector<int64_t> TopK(const query::QueryGraph& query, int64_t k);

 private:
  QueryModel* model_;
};

}  // namespace halk::core

#endif  // HALK_CORE_EVALUATOR_H_
