#ifndef HALK_CORE_CHECKPOINT_H_
#define HALK_CORE_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "core/query_model.h"

namespace halk::core {

/// Binary checkpointing for query models: all trainable parameters (in
/// `Parameters()` order) plus the model configuration, with a magic/version
/// header and a content checksum. A checkpoint written by one model can be
/// restored into any freshly constructed model of the same architecture
/// and configuration — offline training and online serving can live in
/// different processes, as the paper's deployment sketch assumes.
///
/// Format (little-endian):
///   "HALKCKPT" | u32 version | u32 name_len | name bytes
///   | ModelConfig fields | u64 num_tensors
///   | per tensor: u64 numel, float data[numel]
///   | u64 fnv1a checksum of everything above
[[nodiscard]] Status SaveCheckpoint(const QueryModel& model, const std::string& path);

/// Restores parameters into `model`; fails (without partial writes) on
/// magic/version/name/shape/checksum mismatch.
[[nodiscard]] Status LoadCheckpoint(QueryModel* model, const std::string& path);

}  // namespace halk::core

#endif  // HALK_CORE_CHECKPOINT_H_

