#include "core/pruner.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace halk::core {

Pruner::Pruner(HalkModel* model) : model_(model) {
  HALK_CHECK(model != nullptr);
}

PruneResult Pruner::Prune(const query::QueryGraph& query,
                          const kg::KnowledgeGraph& graph, int64_t top_k) {
  HALK_CHECK(graph.finalized());
  std::vector<ArcBatch> arcs = model_->EmbedAllNodes(query);

  std::unordered_set<int64_t> selected;
  for (int id : query.TopologicalOrder()) {
    const query::QueryNode& node =
        query.nodes()[static_cast<size_t>(id)];
    if (node.op == query::OpType::kAnchor) {
      selected.insert(node.anchor_entity);
      continue;
    }
    // Top-k entities nearest to this variable node's arc.
    const ArcBatch& arc = arcs[static_cast<size_t>(id)];
    std::vector<float> dist;
    model_->DistancesToAll({arc.center, arc.length}, 0, &dist);
    std::vector<int64_t> ids(dist.size());
    std::iota(ids.begin(), ids.end(), 0);
    const int64_t k = std::min<int64_t>(top_k, static_cast<int64_t>(ids.size()));
    std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                      [&dist](int64_t a, int64_t b) {
                        return dist[static_cast<size_t>(a)] <
                               dist[static_cast<size_t>(b)];
                      });
    selected.insert(ids.begin(), ids.begin() + k);
  }

  PruneResult result;
  result.candidates.assign(selected.begin(), selected.end());
  std::sort(result.candidates.begin(), result.candidates.end());

  result.induced = kg::KnowledgeGraph::WithSharedVocabulary(graph);
  for (const kg::Triple& t : graph.triples()) {
    if (selected.count(t.head) && selected.count(t.tail)) {
      HALK_CHECK_OK(result.induced.AddTriple(t.head, t.relation, t.tail));
    }
  }
  result.induced.Finalize();
  return result;
}

}  // namespace halk::core
