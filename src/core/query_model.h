#ifndef HALK_CORE_QUERY_MODEL_H_
#define HALK_CORE_QUERY_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/topk.h"
#include "kg/groups.h"
#include "query/dag.h"
#include "tensor/tensor.h"

namespace halk::core {

class OperatorModel;

/// Hyper-parameters shared by HaLk and all baseline models. Paper defaults
/// (d = 800, batch 512, γ = 24) are scaled for CPU training; the geometry is
/// dimension-independent (see DESIGN.md).
struct ModelConfig {
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t dim = 32;      // embedding dimensionality d
  int64_t hidden = 64;   // MLP hidden width
  float rho = 1.0f;      // arc radius ρ (fixed, as in the paper)
  float lambda = 0.3f;   // residual-correction scale (λ of Eq. 3)
  float eta = 0.9f;      // inside-distance weight η (Eq. 15; the paper's
                         // 0.02 under-weights within-arc ranking at d=16)
  float gamma = 4.0f;    // loss margin γ (the paper's 24 goes with d=800;
                         // it must scale with the L1 distance magnitude)
  float xi = 1.0f;       // group-penalty weight ξ             (Eq. 17)
  uint64_t seed = 1;
};

/// A batch of query embeddings. The semantics of the two components are
/// model-specific: HaLk/ConE use (center angles, arclengths/apertures),
/// NewLook uses (box center, box offset), MLPMix uses (vector, unused).
struct EmbeddingBatch {
  tensor::Tensor a;  // [B, d]
  tensor::Tensor b;  // [B, d]
};

/// One conjunctive (DNF) branch of a query: row `row` of an embedding
/// batch. A query's entity score is the minimum distance over its branches.
struct BranchRef {
  const EmbeddingBatch* embedding = nullptr;
  int64_t row = 0;
};

/// Observability counters filled by one AccumulateTopKRange scan.
struct ScanStats {
  /// Entities examined (the size of the scanned range).
  int64_t entities_scanned = 0;
  /// Entities abandoned by a bound-aware early exit before their exact
  /// distance was known; 0 for the exhaustive base kernel.
  int64_t entities_pruned = 0;
  /// Columnar-store scans only (src/store/): per-dimension column blocks
  /// actually read vs. skipped because every entity in the row group was
  /// already pruned. Skipped blocks are pages never faulted in — the
  /// counters behind the out-of-core memory ceiling. 0 on in-RAM scans.
  int64_t column_blocks_scanned = 0;
  int64_t column_blocks_skipped = 0;
};

/// Common interface of query-embedding models: grounded union-free query
/// DAGs go in, embeddings come out, and entities are ranked by a
/// model-specific distance. Union is handled outside the model via the DNF
/// rewrite (min distance over conjunctive branches), exactly as in the
/// paper.
class QueryModel {
 public:
  explicit QueryModel(const ModelConfig& config) : config_(config) {}
  virtual ~QueryModel() = default;

  QueryModel(const QueryModel&) = delete;
  QueryModel& operator=(const QueryModel&) = delete;

  virtual std::string name() const = 0;

  /// Embeds a batch of same-structure, union-free, grounded queries.
  /// Differentiable: gradients flow to entity/relation tables and operator
  /// networks.
  virtual EmbeddingBatch EmbedQueries(
      const std::vector<const query::QueryGraph*>& queries) = 0;

  /// Differentiable distance [B] between `entities[i]` and embedding row i.
  virtual tensor::Tensor Distance(const std::vector<int64_t>& entities,
                                  const EmbeddingBatch& embedding) = 0;

  /// Raw (tape-free) distances from embedding row `row` to every entity;
  /// used for ranking at evaluation time. `out` is resized to num_entities.
  virtual void DistancesToAll(const EmbeddingBatch& embedding, int64_t row,
                              std::vector<float>* out) const = 0;

  /// Raw distances from embedding row `row` to the entity slice
  /// [begin, end): `out` is resized to end - begin with `(*out)[i]` the
  /// distance to entity begin + i, bit-identical to the corresponding
  /// DistancesToAll entries. The base implementation scores the full table
  /// and copies the slice; models with per-entity kernels override it to
  /// touch only the range (the sharded-execution hot path).
  virtual void DistancesToRange(const EmbeddingBatch& embedding, int64_t row,
                                int64_t begin, int64_t end,
                                std::vector<float>* out) const {
    std::vector<float> all;
    DistancesToAll(embedding, row, &all);
    out->assign(all.begin() + begin, all.begin() + end);
  }

  /// Streams the entity slice [begin, end) into `acc`, scoring each entity
  /// by its minimum distance over the branches (the DNF union semantics).
  /// Exact relative to the full scan: acc->Take() afterwards equals what
  /// pushing every DistancesToRange minimum would produce. The base
  /// implementation does exactly that full scan; models whose distance
  /// accumulates monotonically per dimension override it with a bound-aware
  /// kernel that abandons an entity as soon as its partial sum exceeds
  /// acc->bound() — the sharded-execution hot path. `stats` (optional)
  /// receives scan counters for tracing.
  virtual void AccumulateTopKRange(const std::vector<BranchRef>& branches,
                                   int64_t begin, int64_t end,
                                   TopKAccumulator* acc,
                                   ScanStats* stats = nullptr) const {
    std::vector<float> best;
    std::vector<float> dist;
    for (const BranchRef& branch : branches) {
      DistancesToRange(*branch.embedding, branch.row, begin, end, &dist);
      if (best.empty()) {
        best = dist;
      } else {
        for (size_t i = 0; i < dist.size(); ++i) {
          best[i] = std::min(best[i], dist[i]);
        }
      }
    }
    for (size_t i = 0; i < best.size(); ++i) {
      acc->Push(begin + static_cast<int64_t>(i), best[i]);
    }
    if (stats != nullptr) {
      stats->entities_scanned += static_cast<int64_t>(best.size());
    }
  }

  /// Distance below which an entity counts as a member of the set that
  /// embedding row `row` denotes, or a negative value when the model's
  /// geometry has no such notion. Together with DistancesToRange this
  /// powers the analytics plane's sampled "actual rows" probe
  /// (plan/executor.h): |{e : distance(e) <= threshold}| estimates the
  /// operator's true output cardinality. Never used for ranking.
  virtual double MembershipThreshold(const EmbeddingBatch& embedding,
                                     int64_t row) const {
    (void)embedding;
    (void)row;
    return -1.0;
  }

  /// Trainable leaves for the optimizer.
  virtual std::vector<tensor::Tensor> Parameters() const = 0;

  /// Whether the model implements an operator (ConE/MLPMix lack difference,
  /// NewLook lacks negation — their tables in the paper have '-').
  virtual bool Supports(query::OpType op) const = 0;

  /// Operator-level view of the model (core/operator_model.h) when it can
  /// evaluate individual batched operators over a shared compute DAG; null
  /// otherwise. The planner-backed serving path requires it and falls back
  /// to per-layout whole-query batching when absent.
  virtual OperatorModel* AsOperatorModel() { return nullptr; }

  const ModelConfig& config() const { return config_; }

 protected:
  ModelConfig config_;
};

}  // namespace halk::core

#endif  // HALK_CORE_QUERY_MODEL_H_
