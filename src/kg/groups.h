#ifndef HALK_KG_GROUPS_H_
#define HALK_KG_GROUPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "kg/graph.h"

namespace halk::kg {

/// Random node grouping with relation-based 3D group adjacency (Sec. II-A
/// of the paper): nodes are divided into `num_groups` memory-friendly
/// groups recorded as one-hot vectors, and `M[r][i][k] = 1` iff some node
/// of group i connects to some node of group k via relation r. Query
/// processing uses the grouping for the intersection attention weights
/// (z_i in Eq. 10) and for the group penalty in the loss (Eq. 17).
class NodeGrouping {
 public:
  /// Uniformly random assignment of entities to groups.
  static NodeGrouping Random(int64_t num_entities, int num_groups, Rng* rng);

  int num_groups() const { return num_groups_; }
  int64_t num_entities() const {
    return static_cast<int64_t>(group_of_.size());
  }

  int group_of(int64_t entity) const;

  /// One-hot group vector of an entity (length num_groups).
  std::vector<float> OneHot(int64_t entity) const;

  /// Builds M from a graph's triples.
  void BuildAdjacency(const KnowledgeGraph& graph);

  bool Connected(int64_t relation, int from_group, int to_group) const;

  /// Multi-hot group vector reachable from `from` (a multi-hot vector)
  /// through `relation` — the group-level image of a projection.
  std::vector<float> Project(const std::vector<float>& from,
                             int64_t relation) const;

  /// Elementwise product (the paper's h_{U1} ⊙ ... ⊙ h_{Uk} for
  /// intersection).
  static std::vector<float> Intersect(const std::vector<float>& a,
                                      const std::vector<float>& b);

  /// Elementwise max (union of group sets).
  static std::vector<float> Union(const std::vector<float>& a,
                                  const std::vector<float>& b);

  /// All-ones vector (used for negation, whose answers may fall anywhere).
  std::vector<float> AllGroups() const;

  /// z = 1 / (||a - b||_1 + 1), the group-similarity factor of Eq. (10).
  static float Similarity(const std::vector<float>& a,
                          const std::vector<float>& b);

 private:
  NodeGrouping(std::vector<int> group_of, int num_groups)
      : group_of_(std::move(group_of)), num_groups_(num_groups) {}

  size_t AdjSlot(int64_t relation, int from_group, int to_group) const;

  std::vector<int> group_of_;
  int num_groups_ = 0;
  int64_t num_relations_ = 0;
  std::vector<uint8_t> adjacency_;  // [relation][from][to]
};

}  // namespace halk::kg

#endif  // HALK_KG_GROUPS_H_
