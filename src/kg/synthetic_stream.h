#ifndef HALK_KG_SYNTHETIC_STREAM_H_
#define HALK_KG_SYNTHETIC_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/synthetic.h"

namespace halk::kg {

/// Knobs for the streaming synthetic KG generator (SyntheticKgStream).
/// Unlike SyntheticKgOptions there is no global triple target: each head
/// entity emits a small local fan-out, so the edge count scales linearly
/// with num_entities and generation needs O(types + relations + one chunk)
/// memory — the million-entity regime bench_shard_scaling runs in.
struct StreamKgOptions {
  std::string name = "synthetic-stream";
  int64_t num_entities = 1000000;
  int64_t num_relations = 64;
  int num_types = 16;
  int latent_dim = 4;
  /// Mean edges per head (geometric fan-out, capped at 8).
  double mean_fanout = 2.0;
  /// Tail candidates sampled per edge; the latent-nearest wins. Larger
  /// pools give cleaner latent structure at more generation cost.
  int64_t candidate_pool = 32;
  /// Fraction of edges replaced by uniform noise tails.
  double noise_fraction = 0.02;
  /// Max triples returned by one NextChunk call.
  int64_t chunk_triples = 65536;
  uint64_t seed = 42;
};

/// Seeded, resumable triple stream over a synthetic KG that is never
/// materialized. All per-entity state (type, latent angle vector) derives
/// from hash(seed, entity), so:
///   * chunks are deterministic for a fixed seed regardless of chunk size;
///   * a stream over a *slice* (smaller num_entities, same seed) sees the
///     identical types/latents for the shared id prefix — benches sample
///     queries from a materialized slice of the same million-entity world;
///   * each head's edges are generated atomically from a per-head RNG, so
///     chunk boundaries never split or reorder a head's fan-out.
/// The latent angular ground truth of kg/synthetic.h is preserved: entities
/// cluster around type centers, relations are latent rotations, and tails
/// are the latent-nearest candidates of the relation's object type.
class SyntheticKgStream {
 public:
  explicit SyntheticKgStream(const StreamKgOptions& options);

  const StreamKgOptions& options() const { return options_; }

  /// Appends the next chunk (whole heads, at most chunk_triples triples;
  /// a head emitting past the limit finishes its fan-out, so chunks can
  /// slightly overshoot). Returns false when the stream is exhausted and
  /// nothing was appended.
  bool NextChunk(std::vector<Triple>* out);

  /// Rewinds to the first head.
  void Reset() { next_head_ = 0; }
  int64_t next_head() const { return next_head_; }

  // -- deterministic per-id world structure (independent of stream pos) --
  int TypeOf(int64_t entity) const;
  /// Entity's latent angle vector (latent_dim doubles).
  void EntityLatent(int64_t entity, std::vector<double>* out) const;
  const std::vector<double>& RelationRotation(int64_t relation) const;
  int SubjectType(int64_t relation) const;
  int ObjectType(int64_t relation) const;

 private:
  /// Emits one head's full fan-out.
  void EmitHead(int64_t head, std::vector<Triple>* out) const;

  StreamKgOptions options_;
  // Materialized O(types + relations) world tables.
  std::vector<std::vector<double>> type_centers_;
  std::vector<std::vector<double>> rotations_;
  std::vector<int> subject_type_;
  std::vector<int> object_type_;
  std::vector<std::vector<int64_t>> relations_by_subject_type_;
  int64_t next_head_ = 0;
};

/// Materializes a (small) streamed KG into the nested train/valid/test
/// Dataset shape. The split is a deterministic per-triple hash — unlike
/// GenerateSyntheticKg there is no global coverage pass, so symbols are not
/// guaranteed to occur in train; meant for slice-based query sampling and
/// tests, not full training runs.
Dataset MaterializeStreamDataset(const StreamKgOptions& options,
                                 double valid_holdout, double test_holdout);

}  // namespace halk::kg

#endif  // HALK_KG_SYNTHETIC_STREAM_H_
