#ifndef HALK_KG_CSR_H_
#define HALK_KG_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

namespace halk::kg {

struct Triple {
  int64_t head;
  int64_t relation;
  int64_t tail;

  bool operator==(const Triple& other) const = default;
};

/// Compressed sparse adjacency over (entity, relation) pairs in both
/// directions: `Tails(h, r)` enumerates t with (h, r, t) and `Heads(t, r)`
/// enumerates h. Built once; lookups are O(1) + output size.
class CsrIndex {
 public:
  CsrIndex() = default;

  void Build(int64_t num_entities, int64_t num_relations,
             const std::vector<Triple>& triples);

  std::span<const int64_t> Tails(int64_t head, int64_t relation) const;
  std::span<const int64_t> Heads(int64_t tail, int64_t relation) const;

  /// Out-degree of `head` under `relation`.
  int64_t OutDegree(int64_t head, int64_t relation) const {
    return static_cast<int64_t>(Tails(head, relation).size());
  }

  int64_t num_entities() const { return num_entities_; }
  int64_t num_relations() const { return num_relations_; }

 private:
  // One offset table per relation over entities; values are shared flat
  // arrays. fwd: by head -> tails; rev: by tail -> heads.
  size_t Slot(int64_t entity, int64_t relation) const;

  int64_t num_entities_ = 0;
  int64_t num_relations_ = 0;
  std::vector<int64_t> fwd_offsets_;  // (num_relations * num_entities + 1)
  std::vector<int64_t> fwd_values_;
  std::vector<int64_t> rev_offsets_;
  std::vector<int64_t> rev_values_;
};

}  // namespace halk::kg

#endif  // HALK_KG_CSR_H_
