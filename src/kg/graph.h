#ifndef HALK_KG_GRAPH_H_
#define HALK_KG_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "kg/csr.h"
#include "kg/dictionary.h"
#include "kg/stats.h"

namespace halk::kg {

/// A multi-relational knowledge graph G = (V, R, T). Triples are appended
/// (optionally by name through shared dictionaries) and then `Finalize()`
/// builds the CSR adjacency index used by query execution and matching.
class KnowledgeGraph {
 public:
  /// Creates a graph with its own dictionaries.
  KnowledgeGraph();

  /// Creates a graph sharing dictionaries with `base` — used for the
  /// paper's nested splits G_train ⊆ G_valid ⊆ G_test, where all three
  /// graphs index the same entity/relation vocabulary.
  static KnowledgeGraph WithSharedVocabulary(const KnowledgeGraph& base);

  /// Appends a triple by id. Duplicate triples are ignored.
  /// Ids must already exist in the dictionaries.
  [[nodiscard]] Status AddTriple(int64_t head, int64_t relation, int64_t tail);

  /// Appends a triple by name, growing the dictionaries as needed.
  void AddTriple(const std::string& head, const std::string& relation,
                 const std::string& tail);

  bool HasTriple(int64_t head, int64_t relation, int64_t tail) const;

  /// Builds the CSR index; call after the last AddTriple.
  void Finalize();
  bool finalized() const { return finalized_; }

  const CsrIndex& index() const;

  /// Per-relation degree statistics, built with the CSR in Finalize();
  /// feeds the planner's cost model.
  const GraphStats& stats() const;

  const std::vector<Triple>& triples() const { return triples_; }
  int64_t num_entities() const { return entities_->size(); }
  int64_t num_relations() const { return relations_->size(); }
  int64_t num_triples() const { return static_cast<int64_t>(triples_.size()); }

  Dictionary& entities() { return *entities_; }
  const Dictionary& entities() const { return *entities_; }
  Dictionary& relations() { return *relations_; }
  const Dictionary& relations() const { return *relations_; }

  /// Ensures ids [0, n) exist for anonymous entities (synthetic data).
  void ReserveEntities(int64_t n);
  void ReserveRelations(int64_t n);

 private:
  static uint64_t PackKey(int64_t h, int64_t r, int64_t t);

  std::shared_ptr<Dictionary> entities_;
  std::shared_ptr<Dictionary> relations_;
  std::vector<Triple> triples_;
  std::unordered_set<uint64_t> triple_keys_;
  CsrIndex index_;
  GraphStats stats_;
  bool finalized_ = false;
};

}  // namespace halk::kg

#endif  // HALK_KG_GRAPH_H_

