#ifndef HALK_KG_IO_H_
#define HALK_KG_IO_H_

#include <string>

#include "common/status.h"
#include "kg/graph.h"

namespace halk::kg {

/// Loads `head \t relation \t tail` lines into `graph` (names are added to
/// its dictionaries). Blank lines and lines starting with '#' are skipped.
[[nodiscard]] Status LoadTriplesTsv(const std::string& path, KnowledgeGraph* graph);

/// Writes all triples of `graph` as TSV.
[[nodiscard]] Status SaveTriplesTsv(const KnowledgeGraph& graph, const std::string& path);

}  // namespace halk::kg

#endif  // HALK_KG_IO_H_

