#include "kg/stats.h"

#include <algorithm>

namespace halk::kg {

namespace {

const RelationStats kEmptyStats;

}  // namespace

GraphStats GraphStats::Collect(int64_t num_entities, int64_t num_relations,
                               const std::vector<Triple>& triples) {
  GraphStats stats;
  stats.num_entities_ = num_entities;
  stats.relations_.assign(static_cast<size_t>(std::max<int64_t>(
                              num_relations, 0)),
                          RelationStats{});
  if (num_entities <= 0 || num_relations <= 0) return stats;

  // Group triples by relation so distinct-endpoint counting can reuse two
  // stamp arrays instead of a per-relation hash set.
  std::vector<const Triple*> by_relation;
  by_relation.reserve(triples.size());
  for (const Triple& t : triples) {
    if (t.head < 0 || t.head >= num_entities) continue;
    if (t.tail < 0 || t.tail >= num_entities) continue;
    if (t.relation < 0 || t.relation >= num_relations) continue;
    by_relation.push_back(&t);
  }
  std::sort(by_relation.begin(), by_relation.end(),
            [](const Triple* a, const Triple* b) {
              return a->relation < b->relation;
            });

  // Stamp value = relation + 1, so a fresh relation never matches stale
  // marks and the arrays need no clearing between relations.
  std::vector<int64_t> head_stamp(static_cast<size_t>(num_entities), 0);
  std::vector<int64_t> tail_stamp(static_cast<size_t>(num_entities), 0);
  for (const Triple* t : by_relation) {
    RelationStats& r = stats.relations_[static_cast<size_t>(t->relation)];
    ++r.num_edges;
    ++stats.num_edges_;
    const int64_t stamp = t->relation + 1;
    if (head_stamp[static_cast<size_t>(t->head)] != stamp) {
      head_stamp[static_cast<size_t>(t->head)] = stamp;
      ++r.num_heads;
    }
    if (tail_stamp[static_cast<size_t>(t->tail)] != stamp) {
      tail_stamp[static_cast<size_t>(t->tail)] = stamp;
      ++r.num_tails;
    }
  }
  for (RelationStats& r : stats.relations_) {
    if (r.num_heads > 0) {
      r.avg_out_fanout =
          static_cast<double>(r.num_edges) / static_cast<double>(r.num_heads);
    }
    if (r.num_tails > 0) {
      r.avg_in_fanout =
          static_cast<double>(r.num_edges) / static_cast<double>(r.num_tails);
    }
  }
  return stats;
}

const RelationStats& GraphStats::relation(int64_t r) const {
  if (r < 0 || r >= num_relations()) return kEmptyStats;
  return relations_[static_cast<size_t>(r)];
}

}  // namespace halk::kg
