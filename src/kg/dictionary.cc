#include "kg/dictionary.h"

#include "common/logging.h"

namespace halk::kg {

int64_t Dictionary::GetOrAdd(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const int64_t id = static_cast<int64_t>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  return id;
}

Result<int64_t> Dictionary::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return Status::NotFound("name not in dictionary: " + name);
  }
  return it->second;
}

bool Dictionary::Contains(const std::string& name) const {
  return ids_.count(name) > 0;
}

const std::string& Dictionary::Name(int64_t id) const {
  HALK_CHECK_GE(id, 0);
  HALK_CHECK_LT(id, size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace halk::kg
