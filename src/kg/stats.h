#ifndef HALK_KG_STATS_H_
#define HALK_KG_STATS_H_

#include <cstdint>
#include <vector>

#include "kg/csr.h"

namespace halk::kg {

/// Degree/fan-out profile of one relation, collected once at
/// KnowledgeGraph::Finalize() and stored alongside the CSR index. The
/// planner's cost model (plan/cost_model.h) turns the average fan-outs
/// into projection cardinality estimates.
struct RelationStats {
  int64_t num_edges = 0;
  /// Distinct head entities with at least one edge under the relation.
  int64_t num_heads = 0;
  /// Distinct tail entities with at least one edge under the relation.
  int64_t num_tails = 0;
  /// num_edges / num_heads: expected |Tails(h, r)| for a head that has the
  /// relation at all; 0 when the relation has no edges.
  double avg_out_fanout = 0.0;
  /// num_edges / num_tails (the reverse direction).
  double avg_in_fanout = 0.0;
};

/// Per-relation degree statistics over a triple set. Immutable after
/// Collect; safe to share across serving threads by const reference.
class GraphStats {
 public:
  GraphStats() = default;

  /// Single pass over `triples` plus one sort: O(T log T) time, O(T)
  /// scratch. Triples with out-of-range ids are ignored (they cannot be
  /// indexed by the CSR either).
  static GraphStats Collect(int64_t num_entities, int64_t num_relations,
                            const std::vector<Triple>& triples);

  /// Stats of relation `r`; zeros for out-of-range ids so callers can
  /// probe speculative relations without bounds juggling.
  const RelationStats& relation(int64_t r) const;

  int64_t num_entities() const { return num_entities_; }
  int64_t num_relations() const {
    return static_cast<int64_t>(relations_.size());
  }
  int64_t num_edges() const { return num_edges_; }

 private:
  int64_t num_entities_ = 0;
  int64_t num_edges_ = 0;
  std::vector<RelationStats> relations_;
};

}  // namespace halk::kg

#endif  // HALK_KG_STATS_H_
