#include "kg/graph.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace halk::kg {

namespace {
// Packing budget: 22 bits head + 20 bits relation + 22 bits tail.
constexpr int64_t kMaxEntities = int64_t{1} << 22;
constexpr int64_t kMaxRelations = int64_t{1} << 20;
}  // namespace

KnowledgeGraph::KnowledgeGraph()
    : entities_(std::make_shared<Dictionary>()),
      relations_(std::make_shared<Dictionary>()) {}

KnowledgeGraph KnowledgeGraph::WithSharedVocabulary(
    const KnowledgeGraph& base) {
  KnowledgeGraph g;
  g.entities_ = base.entities_;
  g.relations_ = base.relations_;
  return g;
}

uint64_t KnowledgeGraph::PackKey(int64_t h, int64_t r, int64_t t) {
  HALK_CHECK_LT(h, kMaxEntities);
  HALK_CHECK_LT(r, kMaxRelations);
  HALK_CHECK_LT(t, kMaxEntities);
  return (static_cast<uint64_t>(h) << 42) | (static_cast<uint64_t>(r) << 22) |
         static_cast<uint64_t>(t);
}

Status KnowledgeGraph::AddTriple(int64_t head, int64_t relation,
                                 int64_t tail) {
  if (head < 0 || head >= num_entities() || tail < 0 ||
      tail >= num_entities()) {
    return Status::InvalidArgument(
        StrFormat("entity id out of range: (%ld, %ld, %ld) with %ld entities",
                  static_cast<long>(head), static_cast<long>(relation),
                  static_cast<long>(tail),
                  static_cast<long>(num_entities())));
  }
  if (relation < 0 || relation >= num_relations()) {
    return Status::InvalidArgument("relation id out of range");
  }
  const uint64_t key = PackKey(head, relation, tail);
  if (triple_keys_.insert(key).second) {
    triples_.push_back({head, relation, tail});
    finalized_ = false;
  }
  return Status::OK();
}

void KnowledgeGraph::AddTriple(const std::string& head,
                               const std::string& relation,
                               const std::string& tail) {
  const int64_t h = entities_->GetOrAdd(head);
  const int64_t r = relations_->GetOrAdd(relation);
  const int64_t t = entities_->GetOrAdd(tail);
  HALK_CHECK_OK(AddTriple(h, r, t));
}

bool KnowledgeGraph::HasTriple(int64_t head, int64_t relation,
                               int64_t tail) const {
  if (head < 0 || head >= num_entities() || tail < 0 ||
      tail >= num_entities() || relation < 0 || relation >= num_relations()) {
    return false;
  }
  return triple_keys_.count(PackKey(head, relation, tail)) > 0;
}

void KnowledgeGraph::Finalize() {
  index_.Build(num_entities(), num_relations(), triples_);
  stats_ = GraphStats::Collect(num_entities(), num_relations(), triples_);
  finalized_ = true;
}

const CsrIndex& KnowledgeGraph::index() const {
  HALK_CHECK(finalized_) << "KnowledgeGraph::Finalize() not called";
  return index_;
}

const GraphStats& KnowledgeGraph::stats() const {
  HALK_CHECK(finalized_) << "KnowledgeGraph::Finalize() not called";
  return stats_;
}

void KnowledgeGraph::ReserveEntities(int64_t n) {
  for (int64_t i = entities_->size(); i < n; ++i) {
    entities_->GetOrAdd("e" + std::to_string(i));
  }
}

void KnowledgeGraph::ReserveRelations(int64_t n) {
  for (int64_t i = relations_->size(); i < n; ++i) {
    relations_->GetOrAdd("r" + std::to_string(i));
  }
}

}  // namespace halk::kg
