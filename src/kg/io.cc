#include "kg/io.h"

#include <fstream>

#include "common/string_util.h"

namespace halk::kg {

Status LoadTriplesTsv(const std::string& path, KnowledgeGraph* graph) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(trimmed, '\t');
    if (fields.size() != 3) {
      return Status::ParseError(
          StrFormat("%s:%ld: expected 3 tab-separated fields, got %zu",
                    path.c_str(), static_cast<long>(line_no), fields.size()));
    }
    graph->AddTriple(fields[0], fields[1], fields[2]);
  }
  return Status::OK();
}

Status SaveTriplesTsv(const KnowledgeGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  for (const Triple& t : graph.triples()) {
    out << graph.entities().Name(t.head) << '\t'
        << graph.relations().Name(t.relation) << '\t'
        << graph.entities().Name(t.tail) << '\n';
  }
  if (!out.good()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace halk::kg
