#include "kg/groups.h"

#include <cmath>

#include "common/logging.h"

namespace halk::kg {

NodeGrouping NodeGrouping::Random(int64_t num_entities, int num_groups,
                                  Rng* rng) {
  HALK_CHECK_GT(num_groups, 0);
  std::vector<int> assignment(static_cast<size_t>(num_entities));
  for (auto& g : assignment) {
    g = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(num_groups)));
  }
  return NodeGrouping(std::move(assignment), num_groups);
}

int NodeGrouping::group_of(int64_t entity) const {
  HALK_CHECK_GE(entity, 0);
  HALK_CHECK_LT(entity, num_entities());
  return group_of_[static_cast<size_t>(entity)];
}

std::vector<float> NodeGrouping::OneHot(int64_t entity) const {
  std::vector<float> v(static_cast<size_t>(num_groups_), 0.0f);
  v[static_cast<size_t>(group_of(entity))] = 1.0f;
  return v;
}

size_t NodeGrouping::AdjSlot(int64_t relation, int from_group,
                             int to_group) const {
  return static_cast<size_t>(
      (relation * num_groups_ + from_group) * num_groups_ + to_group);
}

void NodeGrouping::BuildAdjacency(const KnowledgeGraph& graph) {
  HALK_CHECK_EQ(graph.num_entities(), num_entities());
  num_relations_ = graph.num_relations();
  adjacency_.assign(
      static_cast<size_t>(num_relations_) * num_groups_ * num_groups_, 0);
  for (const Triple& t : graph.triples()) {
    adjacency_[AdjSlot(t.relation, group_of(t.head), group_of(t.tail))] = 1;
  }
}

bool NodeGrouping::Connected(int64_t relation, int from_group,
                             int to_group) const {
  HALK_CHECK(!adjacency_.empty()) << "BuildAdjacency not called";
  HALK_CHECK_GE(relation, 0);
  HALK_CHECK_LT(relation, num_relations_);
  return adjacency_[AdjSlot(relation, from_group, to_group)] != 0;
}

std::vector<float> NodeGrouping::Project(const std::vector<float>& from,
                                         int64_t relation) const {
  HALK_CHECK_EQ(static_cast<int>(from.size()), num_groups_);
  std::vector<float> out(static_cast<size_t>(num_groups_), 0.0f);
  for (int g = 0; g < num_groups_; ++g) {
    if (from[static_cast<size_t>(g)] <= 0.0f) continue;
    for (int h = 0; h < num_groups_; ++h) {
      if (Connected(relation, g, h)) out[static_cast<size_t>(h)] = 1.0f;
    }
  }
  return out;
}

std::vector<float> NodeGrouping::Intersect(const std::vector<float>& a,
                                           const std::vector<float>& b) {
  HALK_CHECK_EQ(a.size(), b.size());
  std::vector<float> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

std::vector<float> NodeGrouping::Union(const std::vector<float>& a,
                                       const std::vector<float>& b) {
  HALK_CHECK_EQ(a.size(), b.size());
  std::vector<float> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

std::vector<float> NodeGrouping::AllGroups() const {
  return std::vector<float>(static_cast<size_t>(num_groups_), 1.0f);
}

float NodeGrouping::Similarity(const std::vector<float>& a,
                               const std::vector<float>& b) {
  HALK_CHECK_EQ(a.size(), b.size());
  float l1 = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) l1 += std::fabs(a[i] - b[i]);
  return 1.0f / (l1 + 1.0f);
}

}  // namespace halk::kg
