#include "kg/csr.h"

#include "common/logging.h"

namespace halk::kg {

size_t CsrIndex::Slot(int64_t entity, int64_t relation) const {
  HALK_CHECK_GE(entity, 0);
  HALK_CHECK_LT(entity, num_entities_);
  HALK_CHECK_GE(relation, 0);
  HALK_CHECK_LT(relation, num_relations_);
  return static_cast<size_t>(relation * num_entities_ + entity);
}

void CsrIndex::Build(int64_t num_entities, int64_t num_relations,
                     const std::vector<Triple>& triples) {
  num_entities_ = num_entities;
  num_relations_ = num_relations;
  const size_t slots = static_cast<size_t>(num_entities * num_relations);
  fwd_offsets_.assign(slots + 1, 0);
  rev_offsets_.assign(slots + 1, 0);

  for (const Triple& t : triples) {
    fwd_offsets_[Slot(t.head, t.relation) + 1]++;
    rev_offsets_[Slot(t.tail, t.relation) + 1]++;
  }
  for (size_t i = 1; i <= slots; ++i) {
    fwd_offsets_[i] += fwd_offsets_[i - 1];
    rev_offsets_[i] += rev_offsets_[i - 1];
  }
  fwd_values_.assign(triples.size(), 0);
  rev_values_.assign(triples.size(), 0);
  std::vector<int64_t> fwd_cursor(fwd_offsets_.begin(), fwd_offsets_.end() - 1);
  std::vector<int64_t> rev_cursor(rev_offsets_.begin(), rev_offsets_.end() - 1);
  for (const Triple& t : triples) {
    fwd_values_[static_cast<size_t>(fwd_cursor[Slot(t.head, t.relation)]++)] =
        t.tail;
    rev_values_[static_cast<size_t>(rev_cursor[Slot(t.tail, t.relation)]++)] =
        t.head;
  }
}

std::span<const int64_t> CsrIndex::Tails(int64_t head, int64_t relation) const {
  const size_t s = Slot(head, relation);
  return {fwd_values_.data() + fwd_offsets_[s],
          static_cast<size_t>(fwd_offsets_[s + 1] - fwd_offsets_[s])};
}

std::span<const int64_t> CsrIndex::Heads(int64_t tail, int64_t relation) const {
  const size_t s = Slot(tail, relation);
  return {rev_values_.data() + rev_offsets_[s],
          static_cast<size_t>(rev_offsets_[s + 1] - rev_offsets_[s])};
}

}  // namespace halk::kg
