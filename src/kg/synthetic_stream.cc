#include "kg/synthetic_stream.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace halk::kg {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// splitmix64 finalizer: the per-id hash every entity property derives
/// from. Strong enough that consecutive ids decorrelate; cheap enough to
/// call per entity per edge.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Mix2(uint64_t a, uint64_t b) { return Mix(Mix(a) ^ b); }

// Domain-separation salts so the type draw, the latent perturbation, and
// the per-head edge RNG never alias.
constexpr uint64_t kTypeSalt = 0x7479706573616c74ULL;
constexpr uint64_t kLatentSalt = 0x6c6174656e74736cULL;
constexpr uint64_t kHeadSalt = 0x68656164727367ULL;
constexpr uint64_t kSplitSalt = 0x73706c697473616cULL;

double LatentChord(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    d += std::fabs(std::sin((a[i] - b[i]) / 2.0));
  }
  return d;
}

}  // namespace

SyntheticKgStream::SyntheticKgStream(const StreamKgOptions& options)
    : options_(options) {
  HALK_CHECK_GT(options_.num_entities, 0);
  HALK_CHECK_GT(options_.num_relations, 0);
  HALK_CHECK_GT(options_.num_types, 0);
  HALK_CHECK_GT(options_.latent_dim, 0);
  HALK_CHECK_GT(options_.candidate_pool, 0);
  HALK_CHECK_GT(options_.chunk_triples, 0);

  // The O(types + relations) world tables come from a dedicated Rng, NOT
  // from per-id hashing: their draw order is fixed, so they are identical
  // for any num_entities — half of the slice property. (The other half is
  // per-entity hashing below.)
  Rng world(options_.seed);
  type_centers_.resize(static_cast<size_t>(options_.num_types));
  for (auto& c : type_centers_) {
    c.resize(static_cast<size_t>(options_.latent_dim));
    for (double& x : c) x = world.Uniform(0.0, kTwoPi);
  }
  rotations_.resize(static_cast<size_t>(options_.num_relations));
  subject_type_.resize(static_cast<size_t>(options_.num_relations));
  object_type_.resize(static_cast<size_t>(options_.num_relations));
  relations_by_subject_type_.resize(static_cast<size_t>(options_.num_types));
  for (int64_t r = 0; r < options_.num_relations; ++r) {
    auto& rot = rotations_[static_cast<size_t>(r)];
    rot.resize(static_cast<size_t>(options_.latent_dim));
    for (double& x : rot) x = world.Uniform(0.0, kTwoPi);
    const int st = static_cast<int>(
        world.UniformInt(static_cast<uint64_t>(options_.num_types)));
    const int ot = static_cast<int>(
        world.UniformInt(static_cast<uint64_t>(options_.num_types)));
    subject_type_[static_cast<size_t>(r)] = st;
    object_type_[static_cast<size_t>(r)] = ot;
    relations_by_subject_type_[static_cast<size_t>(st)].push_back(r);
  }
}

int SyntheticKgStream::TypeOf(int64_t entity) const {
  return static_cast<int>(
      Mix2(options_.seed ^ kTypeSalt, static_cast<uint64_t>(entity)) %
      static_cast<uint64_t>(options_.num_types));
}

void SyntheticKgStream::EntityLatent(int64_t entity,
                                     std::vector<double>* out) const {
  const auto& center = type_centers_[static_cast<size_t>(TypeOf(entity))];
  // The perturbation RNG seeds from hash(seed, id) alone: entity e's latent
  // is the same in a 10^4-entity slice and the 10^7-entity world.
  Rng rng(Mix2(options_.seed ^ kLatentSalt, static_cast<uint64_t>(entity)));
  out->resize(static_cast<size_t>(options_.latent_dim));
  for (int i = 0; i < options_.latent_dim; ++i) {
    (*out)[static_cast<size_t>(i)] =
        center[static_cast<size_t>(i)] + rng.Normal() * 0.5;
  }
}

const std::vector<double>& SyntheticKgStream::RelationRotation(
    int64_t relation) const {
  return rotations_[static_cast<size_t>(relation)];
}

int SyntheticKgStream::SubjectType(int64_t relation) const {
  return subject_type_[static_cast<size_t>(relation)];
}

int SyntheticKgStream::ObjectType(int64_t relation) const {
  return object_type_[static_cast<size_t>(relation)];
}

void SyntheticKgStream::EmitHead(int64_t head,
                                 std::vector<Triple>* out) const {
  Rng rng(Mix2(options_.seed ^ kHeadSalt, static_cast<uint64_t>(head)));
  const int head_type = TypeOf(head);
  const auto& rels =
      relations_by_subject_type_[static_cast<size_t>(head_type)];

  int64_t k = 1;
  const double p_more =
      std::min(0.85, options_.mean_fanout / (1.0 + options_.mean_fanout));
  while (k < 8 && rng.Bernoulli(p_more)) ++k;

  std::vector<double> head_latent;
  EntityLatent(head, &head_latent);
  std::vector<double> rotated(head_latent.size());
  std::vector<double> cand_latent;

  for (int64_t edge = 0; edge < k; ++edge) {
    // Relations keep coherent subject signatures: heads emit through
    // relations typed for them (any relation if the type has none).
    const int64_t r =
        rels.empty()
            ? static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(options_.num_relations)))
            : rels[rng.UniformInt(rels.size())];
    for (size_t i = 0; i < rotated.size(); ++i) {
      rotated[i] = head_latent[i] + rotations_[static_cast<size_t>(r)][i];
    }
    int64_t tail = -1;
    if (rng.Bernoulli(options_.noise_fraction)) {
      tail = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(options_.num_entities)));
    } else {
      // Candidate-sampled nearest neighbour: a uniform pool stands in for
      // the global kNN of the in-RAM generator (which would need the full
      // latent table). Candidates of the relation's object type win ties;
      // a typeless pool degrades to plain nearest-of-pool.
      double best = 0.0;
      double best_typed = 0.0;
      int64_t best_any = -1;
      int64_t best_of_type = -1;
      for (int64_t c = 0; c < options_.candidate_pool; ++c) {
        const int64_t cand = static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(options_.num_entities)));
        if (cand == head) continue;
        EntityLatent(cand, &cand_latent);
        const double dist = LatentChord(rotated, cand_latent);
        if (best_any < 0 || dist < best) {
          best = dist;
          best_any = cand;
        }
        if (TypeOf(cand) == object_type_[static_cast<size_t>(r)] &&
            (best_of_type < 0 || dist < best_typed)) {
          best_typed = dist;
          best_of_type = cand;
        }
      }
      tail = best_of_type >= 0 ? best_of_type : best_any;
    }
    if (tail < 0 || tail == head) continue;
    // Per-head dedupe (the fan-out is tiny, linear scan is fine).
    bool dup = false;
    for (size_t i = out->size(); i > 0; --i) {
      const Triple& prev = (*out)[i - 1];
      if (prev.head != head) break;
      if (prev.relation == r && prev.tail == tail) {
        dup = true;
        break;
      }
    }
    if (!dup) out->push_back({head, r, tail});
  }
}

bool SyntheticKgStream::NextChunk(std::vector<Triple>* out) {
  const size_t start = out->size();
  const size_t limit = start + static_cast<size_t>(options_.chunk_triples);
  while (next_head_ < options_.num_entities && out->size() < limit) {
    EmitHead(next_head_, out);
    ++next_head_;
  }
  return out->size() > start;
}

Dataset MaterializeStreamDataset(const StreamKgOptions& options,
                                 double valid_holdout, double test_holdout) {
  HALK_CHECK_GE(valid_holdout, 0.0);
  HALK_CHECK_GE(test_holdout, 0.0);
  HALK_CHECK_LT(valid_holdout + test_holdout, 0.9);
  SyntheticKgStream stream(options);

  Dataset ds;
  ds.name = options.name;
  ds.train.ReserveEntities(options.num_entities);
  ds.train.ReserveRelations(options.num_relations);
  ds.valid = KnowledgeGraph::WithSharedVocabulary(ds.train);
  ds.test = KnowledgeGraph::WithSharedVocabulary(ds.train);

  std::vector<Triple> chunk;
  while (true) {
    chunk.clear();
    if (!stream.NextChunk(&chunk)) break;
    for (const Triple& t : chunk) {
      // Deterministic per-triple split hash keeps the nesting property
      // without a global shuffle: test ⊇ valid ⊇ train.
      const uint64_t h = Mix2(
          options.seed ^ kSplitSalt,
          Mix2(static_cast<uint64_t>(t.head),
               Mix2(static_cast<uint64_t>(t.relation),
                    static_cast<uint64_t>(t.tail))));
      const double u =
          static_cast<double>(h >> 11) / 9007199254740992.0;  // [0, 1)
      HALK_CHECK_OK(ds.test.AddTriple(t.head, t.relation, t.tail));
      if (u >= test_holdout) {
        HALK_CHECK_OK(ds.valid.AddTriple(t.head, t.relation, t.tail));
      }
      if (u >= test_holdout + valid_holdout) {
        HALK_CHECK_OK(ds.train.AddTriple(t.head, t.relation, t.tail));
      }
    }
  }
  ds.train.Finalize();
  ds.valid.Finalize();
  ds.test.Finalize();

  ds.latent.dim = options.latent_dim;
  ds.latent.entity.reserve(
      static_cast<size_t>(options.num_entities * options.latent_dim));
  std::vector<double> latent;
  for (int64_t e = 0; e < options.num_entities; ++e) {
    stream.EntityLatent(e, &latent);
    ds.latent.entity.insert(ds.latent.entity.end(), latent.begin(),
                            latent.end());
  }
  for (int64_t r = 0; r < options.num_relations; ++r) {
    const std::vector<double>& rot = stream.RelationRotation(r);
    ds.latent.relation.insert(ds.latent.relation.end(), rot.begin(),
                              rot.end());
  }
  return ds;
}

}  // namespace halk::kg
