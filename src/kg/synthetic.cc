#include "kg/synthetic.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace halk::kg {

namespace {

struct RelationSignature {
  int subject_type;
  int object_type;
  double fanout_scale;  // relative one-to-many strength
};

}  // namespace

Dataset GenerateSyntheticKg(const SyntheticKgOptions& options) {
  HALK_CHECK_GT(options.num_entities, 0);
  HALK_CHECK_GT(options.num_relations, 0);
  HALK_CHECK_GT(options.num_types, 0);
  HALK_CHECK_GE(options.valid_holdout, 0.0);
  HALK_CHECK_GE(options.test_holdout, 0.0);
  HALK_CHECK_LT(options.valid_holdout + options.test_holdout, 0.9);
  Rng rng(options.seed);

  // Entity types and per-type member lists.
  std::vector<int> type_of(static_cast<size_t>(options.num_entities));
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(options.num_types));
  for (int64_t e = 0; e < options.num_entities; ++e) {
    const int t =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(options.num_types)));
    type_of[static_cast<size_t>(e)] = t;
    members[static_cast<size_t>(t)].push_back(e);
  }
  // Guard against empty types on tiny graphs.
  for (int t = 0; t < options.num_types; ++t) {
    if (members[static_cast<size_t>(t)].empty()) {
      const int64_t e =
          static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(options.num_entities)));
      members[static_cast<size_t>(type_of[static_cast<size_t>(e)])].erase(
          std::find(members[static_cast<size_t>(type_of[static_cast<size_t>(e)])].begin(),
                    members[static_cast<size_t>(type_of[static_cast<size_t>(e)])].end(), e));
      type_of[static_cast<size_t>(e)] = t;
      members[static_cast<size_t>(t)].push_back(e);
    }
  }

  // Zipf popularity weights per type (position in the shuffled member list
  // determines the rank).
  std::vector<std::vector<double>> weights(members.size());
  for (size_t t = 0; t < members.size(); ++t) {
    rng.Shuffle(&members[t]);
    weights[t].resize(members[t].size());
    for (size_t i = 0; i < members[t].size(); ++i) {
      weights[t][i] =
          1.0 / std::pow(static_cast<double>(i + 1), options.zipf_exponent);
    }
  }

  // Latent geometric ground truth: each entity gets a latent angle vector
  // clustered around its type's center; each relation is a latent rotation.
  // Edges connect heads to the latent-nearest tails after rotation, so the
  // held-out splits are *predictable from structure* — the property of
  // real KGs (FB15k/NELL) that embedding methods exploit. Without it,
  // held-out edges are statistically random and no method (including the
  // paper's) could generalize.
  constexpr int kLatentDim = 4;
  constexpr double kTwoPi = 6.283185307179586;
  std::vector<std::array<double, kLatentDim>> latent(
      static_cast<size_t>(options.num_entities));
  std::vector<std::array<double, kLatentDim>> type_center(
      static_cast<size_t>(options.num_types));
  for (auto& c : type_center) {
    for (double& x : c) x = rng.Uniform(0.0, kTwoPi);
  }
  for (int64_t e = 0; e < options.num_entities; ++e) {
    const auto& c = type_center[static_cast<size_t>(type_of[static_cast<size_t>(e)])];
    for (int i = 0; i < kLatentDim; ++i) {
      latent[static_cast<size_t>(e)][i] = c[i] + rng.Normal() * 0.5;
    }
  }
  auto latent_chord = [&latent](const std::array<double, kLatentDim>& a,
                                int64_t t) {
    double d = 0.0;
    for (int i = 0; i < kLatentDim; ++i) {
      d += std::fabs(
          std::sin((a[i] - latent[static_cast<size_t>(t)][i]) / 2.0));
    }
    return d;
  };

  // Relation signatures and latent rotations.
  std::vector<RelationSignature> sig(
      static_cast<size_t>(options.num_relations));
  std::vector<std::array<double, kLatentDim>> rotation(sig.size());
  for (size_t r = 0; r < sig.size(); ++r) {
    sig[r].subject_type = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(options.num_types)));
    sig[r].object_type = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(options.num_types)));
    sig[r].fanout_scale = rng.Uniform(0.5, 2.0);
    for (double& x : rotation[r]) x = rng.Uniform(0.0, kTwoPi);
  }

  // Sample triples until the target count is reached: draw a (relation,
  // head) pair (heads zipf-weighted), rotate the head's latent vector, and
  // connect it to its k nearest tails of the object type (k geometric, a
  // one-to-many fan-out). A small fraction of edges is uniform noise.
  std::vector<Triple> triples;
  std::unordered_set<uint64_t> seen;
  auto pack = [](int64_t h, int64_t r, int64_t t) {
    return (static_cast<uint64_t>(h) << 42) |
           (static_cast<uint64_t>(r) << 22) | static_cast<uint64_t>(t);
  };
  int64_t guard = 0;
  const int64_t max_attempts = options.num_triples * 50;
  while (static_cast<int64_t>(triples.size()) < options.num_triples &&
         guard++ < max_attempts) {
    const int64_t r = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(options.num_relations)));
    const RelationSignature& s = sig[static_cast<size_t>(r)];
    const auto& hs = members[static_cast<size_t>(s.subject_type)];
    const auto& ts = members[static_cast<size_t>(s.object_type)];
    if (hs.empty() || ts.empty()) continue;
    const int64_t head =
        hs[rng.WeightedIndex(weights[static_cast<size_t>(s.subject_type)])];
    int64_t k = 1;
    const double p_more =
        std::min(0.85, options.mean_fanout * s.fanout_scale /
                           (1.0 + options.mean_fanout * s.fanout_scale));
    while (k < 8 && rng.Bernoulli(p_more)) ++k;

    std::array<double, kLatentDim> rotated =
        latent[static_cast<size_t>(head)];
    for (int i = 0; i < kLatentDim; ++i) {
      rotated[i] += rotation[static_cast<size_t>(r)][i];
    }
    // k nearest tails by latent distance over ALL entities (partial
    // selection). A global kNN keeps the ranking task well-posed: the
    // linked tails are exactly the entities an ideal embedding would rank
    // first. Head selection stays type-driven, so relations keep coherent
    // subject signatures.
    std::vector<std::pair<double, int64_t>> scored;
    scored.reserve(static_cast<size_t>(options.num_entities));
    for (int64_t t = 0; t < options.num_entities; ++t) {
      if (t == head) continue;
      scored.emplace_back(latent_chord(rotated, t), t);
    }
    if (scored.empty()) continue;
    const size_t kk = std::min(static_cast<size_t>(k), scored.size());
    std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(kk),
                      scored.end());
    for (size_t i = 0;
         i < kk && static_cast<int64_t>(triples.size()) < options.num_triples;
         ++i) {
      int64_t tail = scored[i].second;
      // ~2% noise edges keep the graph from being perfectly predictable.
      if (rng.Bernoulli(0.02)) {
        tail = ts[rng.UniformInt(ts.size())];
        if (tail == head) continue;
      }
      if (seen.insert(pack(head, r, tail)).second) {
        triples.push_back({head, r, tail});
      }
    }
  }

  // Split: [train | valid-only | test-only] after a shuffle.
  rng.Shuffle(&triples);
  const int64_t n = static_cast<int64_t>(triples.size());
  int64_t n_test_only = static_cast<int64_t>(
      std::floor(options.test_holdout * static_cast<double>(n)));
  int64_t n_valid_only = static_cast<int64_t>(
      std::floor(options.valid_holdout * static_cast<double>(n)));
  int64_t n_train = n - n_test_only - n_valid_only;

  // Every entity/relation must occur in train so that its embedding gets
  // gradient signal: swap holdout triples covering missing symbols into the
  // train prefix.
  {
    std::vector<char> ent_cov(static_cast<size_t>(options.num_entities), 0);
    std::vector<char> rel_cov(static_cast<size_t>(options.num_relations), 0);
    auto cover = [&](const Triple& t) {
      ent_cov[static_cast<size_t>(t.head)] = 1;
      ent_cov[static_cast<size_t>(t.tail)] = 1;
      rel_cov[static_cast<size_t>(t.relation)] = 1;
    };
    for (int64_t i = 0; i < n_train; ++i) cover(triples[static_cast<size_t>(i)]);
    for (int64_t i = n_train; i < n; ++i) {
      const Triple& t = triples[static_cast<size_t>(i)];
      const bool needed = !ent_cov[static_cast<size_t>(t.head)] ||
                          !ent_cov[static_cast<size_t>(t.tail)] ||
                          !rel_cov[static_cast<size_t>(t.relation)];
      if (needed) {
        std::swap(triples[static_cast<size_t>(i)],
                  triples[static_cast<size_t>(n_train)]);
        cover(triples[static_cast<size_t>(n_train)]);
        ++n_train;
      }
    }
    const int64_t holdout = n - n_train;
    n_test_only = std::min(n_test_only, holdout / 2);
    n_valid_only = holdout - n_test_only;
  }

  Dataset ds;
  ds.name = options.name;
  ds.latent.dim = kLatentDim;
  ds.latent.entity.reserve(latent.size() * kLatentDim);
  for (const auto& u : latent) {
    for (double x : u) ds.latent.entity.push_back(x);
  }
  ds.latent.relation.reserve(rotation.size() * kLatentDim);
  for (const auto& u : rotation) {
    for (double x : u) ds.latent.relation.push_back(x);
  }
  ds.train.ReserveEntities(options.num_entities);
  ds.train.ReserveRelations(options.num_relations);
  ds.valid = KnowledgeGraph::WithSharedVocabulary(ds.train);
  ds.test = KnowledgeGraph::WithSharedVocabulary(ds.train);

  for (int64_t i = 0; i < n; ++i) {
    const Triple& t = triples[static_cast<size_t>(i)];
    HALK_CHECK_OK(ds.test.AddTriple(t.head, t.relation, t.tail));
    if (i < n_train + n_valid_only) {
      HALK_CHECK_OK(ds.valid.AddTriple(t.head, t.relation, t.tail));
    }
    if (i < n_train) {
      HALK_CHECK_OK(ds.train.AddTriple(t.head, t.relation, t.tail));
    }
  }
  ds.train.Finalize();
  ds.valid.Finalize();
  ds.test.Finalize();
  return ds;
}

Dataset MakeFb15kLike(uint64_t seed) {
  SyntheticKgOptions opt;
  opt.name = "FB15k-like";
  opt.num_entities = 1200;
  opt.num_relations = 60;
  opt.num_types = 10;
  opt.num_triples = 20000;  // ~17 edges/entity: FB15k is dense
  opt.zipf_exponent = 0.9;
  opt.mean_fanout = 2.5;  // FB15k is famously one-to-many heavy
  opt.seed = seed;
  return GenerateSyntheticKg(opt);
}

Dataset MakeFb237Like(uint64_t seed) {
  SyntheticKgOptions opt;
  opt.name = "FB237-like";
  opt.num_entities = 1200;
  opt.num_relations = 24;
  opt.num_types = 10;
  opt.num_triples = 16000;  // ~13 edges/entity
  opt.zipf_exponent = 0.8;
  opt.mean_fanout = 2.0;
  opt.seed = seed + 1;
  return GenerateSyntheticKg(opt);
}

Dataset MakeNellLike(uint64_t seed) {
  SyntheticKgOptions opt;
  opt.name = "NELL-like";
  opt.num_entities = 1600;
  opt.num_relations = 32;
  opt.num_types = 12;
  opt.num_triples = 15000;  // ~9 edges/entity: sparsest of the three
  opt.zipf_exponent = 0.7;
  opt.mean_fanout = 1.8;
  opt.seed = seed + 2;
  return GenerateSyntheticKg(opt);
}

}  // namespace halk::kg
