#ifndef HALK_KG_DICTIONARY_H_
#define HALK_KG_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace halk::kg {

/// Bidirectional mapping between external names (entity/relation strings)
/// and dense int64 ids assigned in insertion order.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `name`, inserting it if new.
  int64_t GetOrAdd(const std::string& name);

  /// Id of an existing name, or NotFound.
  [[nodiscard]] Result<int64_t> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Name for an id; requires 0 <= id < size().
  const std::string& Name(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(names_.size()); }

 private:
  std::unordered_map<std::string, int64_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace halk::kg

#endif  // HALK_KG_DICTIONARY_H_

