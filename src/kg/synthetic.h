#ifndef HALK_KG_SYNTHETIC_H_
#define HALK_KG_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "kg/graph.h"

namespace halk::kg {

/// The paper's nested evaluation splits: G_train ⊆ G_valid ⊆ G_test, all
/// sharing one entity/relation vocabulary. Validation/test queries are
/// answered against the larger graphs, so correct answers can require edges
/// unseen during training — the "incomplete KG" generalization setting.
/// The latent geometric model a synthetic KG was generated from (entity
/// angle vectors and relation rotations, row-major `[n, dim]`). Exposed for
/// diagnostics and oracle baselines: an embedding method can at best
/// recover this structure.
struct LatentGroundTruth {
  int dim = 0;
  std::vector<double> entity;    // [num_entities * dim]
  std::vector<double> relation;  // [num_relations * dim]
};

struct Dataset {
  std::string name;
  KnowledgeGraph train;
  KnowledgeGraph valid;
  KnowledgeGraph test;
  LatentGroundTruth latent;
};

/// Knobs for the synthetic KG generator. Defaults give a mid-size graph;
/// the Make*Like factories below configure stand-ins whose *relative*
/// statistics (entity/relation ratio, density, fan-out) follow the three
/// benchmark KGs of the paper, scaled to CPU-trainable size (see DESIGN.md
/// substitution table).
struct SyntheticKgOptions {
  std::string name = "synthetic";
  int64_t num_entities = 1000;
  int64_t num_relations = 20;
  /// Entity types inducing relation signatures (subject type -> object
  /// type), which gives relations coherent semantics and makes multi-hop
  /// queries meaningful.
  int num_types = 8;
  int64_t num_triples = 6000;
  /// Head-popularity skew within a type (larger = more skewed).
  double zipf_exponent = 0.8;
  /// Average tails emitted per (head, relation) draw (one-to-many-ness).
  double mean_fanout = 2.0;
  /// Fraction of triples withheld from train (present in valid and test).
  double valid_holdout = 0.08;
  /// Fraction additionally withheld from valid (present only in test).
  double test_holdout = 0.08;
  uint64_t seed = 42;
};

/// Generates a dataset; all three graphs come back finalized. Every entity
/// and relation is guaranteed to occur in the training graph.
Dataset GenerateSyntheticKg(const SyntheticKgOptions& options);

/// FB15k stand-in: dense, many relations, strong one-to-many.
Dataset MakeFb15kLike(uint64_t seed = 42);
/// FB15k-237 stand-in: fewer relations, sparser than FB15k.
Dataset MakeFb237Like(uint64_t seed = 42);
/// NELL995 stand-in: sparse, high entity/relation ratio.
Dataset MakeNellLike(uint64_t seed = 42);

}  // namespace halk::kg

#endif  // HALK_KG_SYNTHETIC_H_
