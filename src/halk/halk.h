#ifndef HALK_HALK_H_
#define HALK_HALK_H_

/// \file
/// Umbrella header for the HaLk library — a C++ reproduction of
/// "A Holistic Approach for Answering Logical Queries on Knowledge Graphs"
/// (ICDE 2023). See README.md for a tour and DESIGN.md for the system
/// inventory.

#include "baselines/ablations.h"
#include "baselines/betae.h"
#include "baselines/cone.h"
#include "baselines/factory.h"
#include "baselines/mlpmix.h"
#include "baselines/newlook.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/arc.h"
#include "core/checkpoint.h"
#include "core/distance.h"
#include "core/evaluator.h"
#include "core/halk_model.h"
#include "core/loss.h"
#include "core/lsh.h"
#include "core/pruner.h"
#include "core/query_groups.h"
#include "core/query_model.h"
#include "core/trainer.h"
#include "kg/graph.h"
#include "kg/groups.h"
#include "kg/io.h"
#include "kg/synthetic.h"
#include "matching/matcher.h"
#include "matching/pruned_matcher.h"
#include "query/dag.h"
#include "query/dnf.h"
#include "query/executor.h"
#include "query/fingerprint.h"
#include "query/optimizer.h"
#include "query/sampler.h"
#include "query/structures.h"
#include "serving/batcher.h"
#include "serving/lru_cache.h"
#include "serving/metrics.h"
#include "serving/request_queue.h"
#include "serving/server.h"
#include "sparql/adaptor.h"
#include "sparql/parser.h"

#endif  // HALK_HALK_H_
