#ifndef HALK_SERVING_METRICS_H_
#define HALK_SERVING_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace halk::serving {

/// Monotonically increasing event count. Increments are lock-free; reads
/// are approximate under concurrency (exact once writers quiesce).
class Counter {
 public:
  void Increment(int64_t n = 1) {
    // order: independent event count; no other data is published with it.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  // order: monitoring read; staleness by a few increments is acceptable.
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A point-in-time level that can move both ways: queue depth, in-flight
/// requests, replica health. Set/Add are lock-free (Add is a CAS loop, so
/// concurrent deltas never lose updates).
class Gauge {
 public:
  // order: the gauge value is self-contained; no release pairing needed.
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // order: CAS loop on a single word; relaxed suffices because no other
    // memory is published through the gauge.
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  // order: monitoring read; momentary staleness is acceptable.
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus-style quantile interpolation.
/// Observations land in the first bucket whose upper bound is >= x; the
/// last bucket is an implicit +inf overflow. Observe is lock-free
/// (per-bucket atomic counts plus an atomic sum), so hot-path observation
/// never serializes behind readers; concurrent reads see a consistent-
/// enough snapshot (count/sum/buckets may momentarily disagree by the few
/// observations in flight, exact once writers quiesce).
class Histogram {
 public:
  /// A trace exemplar: the last observation of a bucket that carried a
  /// trace id, so a scraped histogram links back to one concrete request.
  /// trace_id 0 means the bucket never saw an exemplified observation.
  struct Exemplar {
    uint64_t trace_id = 0;
    double value = 0.0;
  };

  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Records `x`. A nonzero `exemplar_trace_id` additionally stamps the
  /// landing bucket's exemplar (last-writer-wins, two relaxed stores; a
  /// reader may momentarily pair a trace id with the previous value, which
  /// is acceptable for monitoring — the id always names a real trace).
  void Observe(double x, uint64_t exemplar_trace_id = 0);

  int64_t count() const;
  double sum() const;
  double mean() const;  // 0 when empty

  /// Linear-interpolated quantile estimate, q in [0, 1] (clamped). Defined
  /// edge behavior, never NaN:
  ///  - empty histogram: 0 for every q;
  ///  - q = 0: the lower edge of the first non-empty bucket;
  ///  - q = 1: the upper bound of the last non-empty bucket;
  ///  - observations in the +inf overflow bucket report the largest finite
  ///    bound (so an all-overflow histogram returns it for every q).
  double Quantile(double q) const;

  /// Snapshot of per-bucket counts; bounds().size() + 1 entries, the last
  /// being the +inf overflow bucket (the exposition format's raw series).
  std::vector<int64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// Exemplar of bucket `b` (same indexing as BucketCounts); trace_id 0
  /// when the bucket has none.
  Exemplar BucketExemplar(size_t b) const;

  /// `n` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int n);

  /// The Quantile() interpolation over an externally supplied snapshot
  /// (`counts` has bounds.size() + 1 entries, overflow last) — shared with
  /// obs::WindowedHistogram, whose rolling-window snapshots are merged
  /// from ring slots rather than read from one live histogram.
  static double QuantileFromCounts(const std::vector<double>& bounds,
                                   const std::vector<int64_t>& counts,
                                   double q);

 private:
  std::vector<double> bounds_;               // ascending upper bounds
  std::vector<std::atomic<int64_t>> counts_;  // bounds_.size() + 1 (overflow)
  /// Per-bucket exemplar halves; independently relaxed (see Observe).
  std::vector<std::atomic<uint64_t>> exemplar_trace_;
  std::vector<std::atomic<double>> exemplar_value_;
  std::atomic<double> sum_{0.0};
  std::atomic<int64_t> total_{0};
};

/// Instrument labels, e.g. {{"shard", "2"}, {"replica", "0"}}. Order is
/// irrelevant: the registry canonicalizes by sorting on label name, so
/// {a,b} and {b,a} address the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named counters, gauges, and histograms shared by the serving stack,
/// optionally carrying labels — `GetCounter("shard.tasks", {{"shard","2"}})`
/// addresses one child of the `shard.tasks` family. Get* lazily creates on
/// first use and returns stable pointers (instruments are never removed),
/// so hot paths cache the pointer and skip the registry lock.
///
/// A metric name must keep one kind (counter, gauge, or histogram) and,
/// for histograms, one bucket layout across all its labeled children.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const Labels& labels = {})
      HALK_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const Labels& labels = {})
      HALK_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          const Labels& labels = {}) HALK_EXCLUDES(mu_);

  /// Value of a counter, 0 if it was never created.
  int64_t CounterValue(const std::string& name,
                       const Labels& labels = {}) const HALK_EXCLUDES(mu_);
  /// Value of a gauge, 0 if it was never created.
  double GaugeValue(const std::string& name, const Labels& labels = {}) const
      HALK_EXCLUDES(mu_);

  /// Every labeled child of the gauge family `name` as (canonical label
  /// string, value) pairs, e.g. {"{replica=\"0\",shard=\"1\"}", 0.0}.
  /// Empty when the family does not exist. The unlabeled child, if any,
  /// appears with an empty label string. Lets health endpoints enumerate
  /// e.g. `shard.replica_health` without knowing the label space upfront.
  std::vector<std::pair<std::string, double>> GaugeChildren(
      const std::string& name) const HALK_EXCLUDES(mu_);

  /// Registers a hook run (outside the registry lock, in registration
  /// order) at the start of every DumpText / DumpPrometheus, so derived or
  /// sampled instruments (process.* self-metrics, slo.* burn rates) are
  /// refreshed on each scrape. Hooks may call Get*/Set freely; they must
  /// not call Dump* or AddCollectionHook (self-deadlock by design: the
  /// dump re-enters the registry lock after the hooks finish).
  void AddCollectionHook(std::function<void()> hook) HALK_EXCLUDES(mu_);

  /// Plain-text dump. Ordering is stable and documented: all counters,
  /// then all gauges, then all histograms, each sorted by (name, canonical
  /// label string). Labeled instruments render the canonical labels inline:
  ///   counter serving.submitted 128
  ///   counter shard.tasks{shard="2"} 40
  ///   gauge serving.queue_depth 3
  ///   histogram serving.latency_us count=120 mean=412.5 p50=... p95=... p99=...
  std::string DumpText() const HALK_EXCLUDES(mu_);

  /// Prometheus text exposition (text/plain version 0.0.4): one `# TYPE`
  /// line per family (names sanitized to [a-zA-Z0-9_:], dots become
  /// underscores), counter/gauge sample lines, and the full
  /// `_bucket{le=...}` / `_sum` / `_count` series for histograms with
  /// cumulative bucket counts ending at le="+Inf". Buckets that hold a
  /// trace exemplar append the OpenMetrics-style suffix
  /// ` # {trace_id="<hex>"} <value>` after the sample value.
  std::string DumpPrometheus() const HALK_EXCLUDES(mu_);

 private:
  /// Instrument identity: name plus canonical (sorted, escaped) labels.
  struct Key {
    std::string name;
    std::string labels;  // canonical rendering, "" when unlabeled

    bool operator<(const Key& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };

  /// Copies the hooks out under mu_ and runs them unlocked (hooks call
  /// Get*/Set, which retake mu_).
  void RunCollectionHooks() const HALK_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_ HALK_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ HALK_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_
      HALK_GUARDED_BY(mu_);
  std::vector<std::function<void()>> hooks_ HALK_GUARDED_BY(mu_);
};

}  // namespace halk::serving

#endif  // HALK_SERVING_METRICS_H_
