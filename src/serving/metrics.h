#ifndef HALK_SERVING_METRICS_H_
#define HALK_SERVING_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace halk::serving {

/// Monotonically increasing event count. Increments are lock-free; reads
/// are approximate under concurrency (exact once writers quiesce).
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus-style quantile interpolation.
/// Observations land in the first bucket whose upper bound is >= x; the
/// last bucket is an implicit +inf overflow. Good enough for p50/p95/p99
/// latency and batch-size distributions without per-observation allocation.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double x);

  int64_t count() const;
  double sum() const;
  double mean() const;

  /// Linear-interpolated quantile estimate, q in [0, 1]. Returns 0 when
  /// empty; observations in the overflow bucket report the largest bound.
  double Quantile(double q) const;

  /// `n` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int n);

 private:
  std::vector<double> bounds_;          // ascending upper bounds
  mutable std::mutex mu_;               // guards counts_ and sum_
  std::vector<int64_t> counts_;         // bounds_.size() + 1 (overflow)
  double sum_ = 0.0;
  int64_t total_ = 0;
};

/// Named counters and histograms shared by the serving stack. Get* lazily
/// creates on first use and returns stable pointers (instruments are never
/// removed), so hot paths cache the pointer and skip the registry lock.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  /// Value of a counter, 0 if it was never created.
  int64_t CounterValue(const std::string& name) const;

  /// Plain-text dump, one instrument per line, sorted by name:
  ///   counter serving.submitted 128
  ///   histogram serving.latency_us count=120 mean=412.5 p50=... p95=... p99=...
  std::string DumpText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace halk::serving

#endif  // HALK_SERVING_METRICS_H_
