#include "serving/metrics.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace halk::serving {

namespace {

/// Prometheus label names match [a-zA-Z_][a-zA-Z0-9_]* (no ':', which is
/// reserved for metric names); anything else becomes '_' so adversarial
/// label names can never corrupt the exposition.
std::string SanitizeLabelName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok =
        std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    if (!ok) c = '_';
  }
  if (out.empty()) return "_";
  if (std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(0, 1, '_');
  return out;
}

/// Renders labels in canonical form: names sanitized then sorted, values
/// escaped, `{a="x",b="y"}`. Empty labels render as "" so unlabeled
/// instruments keep their bare name everywhere.
std::string CanonicalLabels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted;
  sorted.reserve(labels.size());
  for (const auto& [label_name, value] : labels) {
    sorted.emplace_back(SanitizeLabelName(label_name), value);
  }
  std::sort(sorted.begin(), sorted.end());
  // Duplicate names (possible when distinct raw names sanitize to the same
  // string) keep their first value: a sample may carry each label once.
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first;
    out += "=\"";
    out += CEscape(sorted[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Histograms reserve the `le` label for their bucket series; a caller
/// label that sanitizes to `le` is renamed to `exported_le` (the standard
/// Prometheus collision convention) so WithLe never emits two `le` pairs.
Labels RenameReservedHistogramLabels(const Labels& labels) {
  Labels fixed = labels;
  for (auto& [label_name, value] : fixed) {
    if (SanitizeLabelName(label_name) == "le") label_name = "exported_le";
  }
  return fixed;
}

/// Prometheus metric names match [a-zA-Z_:][a-zA-Z0-9_:]*; dots (our
/// internal separator) and anything else invalid become underscores.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty()) return "_";
  if (std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(0, 1, '_');
  return out;
}

/// Splices an `le` label into an already-canonical label string.
std::string WithLe(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  return labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1),
      exemplar_trace_(bounds_.size() + 1),
      exemplar_value_(bounds_.size() + 1) {
  HALK_CHECK(!bounds_.empty());
  HALK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t b = 0; b < counts_.size(); ++b) {
    // order: constructor runs before the histogram is shared.
    counts_[b].store(0, std::memory_order_relaxed);
    exemplar_trace_[b].store(0, std::memory_order_relaxed);
    exemplar_value_[b].store(0.0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double x, uint64_t exemplar_trace_id) {
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  // order: bucket counts, sum, and total are independently-read monitoring
  // words; readers tolerate momentary disagreement, so no release pairing.
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    // order: exemplar halves are last-writer-wins monitoring words; a
    // reader pairing the id with a neighbor write's value is documented.
    exemplar_value_[b].store(x, std::memory_order_relaxed);
    exemplar_trace_[b].store(exemplar_trace_id, std::memory_order_relaxed);
  }
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + x,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
  total_.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Exemplar Histogram::BucketExemplar(size_t b) const {
  Exemplar out;
  if (b >= exemplar_trace_.size()) return out;
  // order: monitoring reads; momentary id/value skew is documented.
  out.trace_id = exemplar_trace_[b].load(std::memory_order_relaxed);
  out.value = exemplar_value_[b].load(std::memory_order_relaxed);
  return out;
}

int64_t Histogram::count() const {
  // order: monitoring read; exact only once writers quiesce (documented).
  return total_.load(std::memory_order_relaxed);
}

// order: monitoring read; exact only once writers quiesce (documented).
double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  // order: both reads are monitoring snapshots; small skew is acceptable.
  const int64_t n = total_.load(std::memory_order_relaxed);
  return n == 0 ? 0.0 : sum_.load(std::memory_order_relaxed) /
                            static_cast<double>(n);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(counts_.size());
  for (size_t b = 0; b < counts_.size(); ++b) {
    // order: per-bucket snapshot; Quantile derives its total from this
    // same snapshot, so cross-bucket skew cannot strand the target.
    out[b] = counts_[b].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  // Work from a snapshot and derive the total from it, so a racing Observe
  // between bucket reads can never leave target unreachable.
  return QuantileFromCounts(bounds_, BucketCounts(), q);
}

double Histogram::QuantileFromCounts(const std::vector<double>& bounds,
                                     const std::vector<int64_t>& counts,
                                     double q) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  int64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;  // empty buckets carry no mass
    seen += counts[b];
    if (static_cast<double>(seen) < target) continue;
    if (b >= bounds.size()) return bounds.back();  // overflow bucket
    const double hi = bounds[b];
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    // Interpolate within the bucket assuming uniform mass. q=0 lands at the
    // bucket's lower edge (into=0), q=1 at the last non-empty bucket's
    // upper bound (into=1); the clamp keeps rounding from escaping [lo,hi].
    const double into = std::clamp(
        (target - static_cast<double>(seen - counts[b])) /
            static_cast<double>(counts[b]),
        0.0, 1.0);
    return lo + (hi - lo) * into;
  }
  return bounds.back();
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int n) {
  HALK_CHECK_GT(start, 0.0);
  HALK_CHECK_GT(factor, 1.0);
  HALK_CHECK_GT(n, 0);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  const Key key{name, CanonicalLabels(labels)};
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  const Key key{name, CanonicalLabels(labels)};
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const Labels& labels) {
  const Key key{name,
                CanonicalLabels(RenameReservedHistogramLabels(labels))};
  MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name,
                                      const Labels& labels) const {
  const Key key{name, CanonicalLabels(labels)};
  MutexLock lock(mu_);
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(const std::string& name,
                                   const Labels& labels) const {
  const Key key{name, CanonicalLabels(labels)};
  MutexLock lock(mu_);
  auto it = gauges_.find(key);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeChildren(
    const std::string& name) const {
  std::vector<std::pair<std::string, double>> out;
  MutexLock lock(mu_);
  // The map is ordered by (name, labels), so children are contiguous.
  for (auto it = gauges_.lower_bound(Key{name, ""});
       it != gauges_.end() && it->first.name == name; ++it) {
    out.emplace_back(it->first.labels, it->second->value());
  }
  return out;
}

void MetricsRegistry::AddCollectionHook(std::function<void()> hook) {
  MutexLock lock(mu_);
  hooks_.push_back(std::move(hook));
}

void MetricsRegistry::RunCollectionHooks() const {
  std::vector<std::function<void()>> hooks;
  {
    MutexLock lock(mu_);
    hooks = hooks_;
  }
  // Outside the lock: hooks refresh instruments via Get*/Set, which retake
  // mu_ themselves.
  for (const std::function<void()>& hook : hooks) hook();
}

std::string MetricsRegistry::DumpText() const {
  RunCollectionHooks();
  MutexLock lock(mu_);
  std::ostringstream out;
  for (const auto& [key, c] : counters_) {
    out << "counter " << key.name << key.labels << " " << c->value() << "\n";
  }
  for (const auto& [key, g] : gauges_) {
    out << "gauge " << key.name << key.labels << " " << g->value() << "\n";
  }
  for (const auto& [key, h] : histograms_) {
    out << "histogram " << key.name << key.labels << " count=" << h->count()
        << " mean=" << h->mean() << " p50=" << h->Quantile(0.50)
        << " p95=" << h->Quantile(0.95) << " p99=" << h->Quantile(0.99)
        << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::DumpPrometheus() const {
  RunCollectionHooks();
  MutexLock lock(mu_);
  std::string out;
  // Sanitized families must be unique per instrument, or two raw names
  // like "x.y" and "x_y" (or a counter and a gauge sharing a name) would
  // emit duplicate `# TYPE` declarations and interleave their series.
  // Each (kind, raw name) claims its sanitized family on first use;
  // later claimants of an already-taken family get a deterministic
  // `_2`, `_3`, ... suffix. Kinds are numbered so a counter and a gauge
  // with the same raw name stay distinct families.
  std::set<std::string> used_families;
  std::map<std::pair<int, std::string>, std::string> family_of;
  const auto family_for = [&](int kind, const std::string& raw_name) {
    auto it = family_of.find({kind, raw_name});
    if (it != family_of.end()) return it->second;
    const std::string base = SanitizeName(raw_name);
    std::string family = base;
    for (int n = 2; !used_families.insert(family).second; ++n) {
      family = base + "_" + StrFormat("%d", n);
    }
    family_of[{kind, raw_name}] = family;
    return family;
  };
  // The maps are ordered by (name, labels), so children of a family are
  // contiguous and each family's # TYPE line precedes all its samples.
  std::string last_family;
  for (const auto& [key, c] : counters_) {
    const std::string family = family_for(0, key.name);
    if (family != last_family) {
      out += "# TYPE " + family + " counter\n";
      last_family = family;
    }
    out += family + key.labels + " " +
           StrFormat("%lld", static_cast<long long>(c->value())) + "\n";
  }
  last_family.clear();
  for (const auto& [key, g] : gauges_) {
    const std::string family = family_for(1, key.name);
    if (family != last_family) {
      out += "# TYPE " + family + " gauge\n";
      last_family = family;
    }
    out += family + key.labels + " " + StrFormat("%g", g->value()) + "\n";
  }
  last_family.clear();
  for (const auto& [key, h] : histograms_) {
    const std::string family = family_for(2, key.name);
    if (family != last_family) {
      out += "# TYPE " + family + " histogram\n";
      last_family = family;
    }
    const std::vector<int64_t> counts = h->BucketCounts();
    const std::vector<double>& bounds = h->bounds();
    // OpenMetrics-style exemplar suffix for buckets that captured one; ""
    // for the (common) exemplar-free bucket, so plain scrapers see the
    // classic 0.0.4 line unchanged.
    const auto exemplar_suffix = [&](size_t b) {
      const Histogram::Exemplar e = h->BucketExemplar(b);
      if (e.trace_id == 0) return std::string();
      return " # {trace_id=\"" +
             StrFormat("%llx", static_cast<unsigned long long>(e.trace_id)) +
             "\"} " + StrFormat("%g", e.value);
    };
    int64_t cumulative = 0;
    for (size_t b = 0; b < bounds.size(); ++b) {
      cumulative += counts[b];
      out += family + "_bucket" +
             WithLe(key.labels, StrFormat("%g", bounds[b])) + " " +
             StrFormat("%lld", static_cast<long long>(cumulative)) +
             exemplar_suffix(b) + "\n";
    }
    cumulative += counts.back();
    out += family + "_bucket" + WithLe(key.labels, "+Inf") + " " +
           StrFormat("%lld", static_cast<long long>(cumulative)) +
           exemplar_suffix(counts.size() - 1) + "\n";
    out += family + "_sum" + key.labels + " " + StrFormat("%g", h->sum()) +
           "\n";
    out += family + "_count" + key.labels + " " +
           StrFormat("%lld", static_cast<long long>(cumulative)) + "\n";
  }
  return out;
}

}  // namespace halk::serving
