#include "serving/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace halk::serving {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  HALK_CHECK(!bounds_.empty());
  HALK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double x) {
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[b];
  sum_ += x;
  ++total_;
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  int64_t seen = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) < target) continue;
    if (b >= bounds_.size()) return bounds_.back();  // overflow bucket
    const double hi = bounds_[b];
    const double lo = b == 0 ? 0.0 : bounds_[b - 1];
    if (counts_[b] == 0) return hi;
    // Interpolate within the bucket assuming uniform mass.
    const double into =
        (target - static_cast<double>(seen - counts_[b])) /
        static_cast<double>(counts_[b]);
    return lo + (hi - lo) * into;
  }
  return bounds_.back();
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int n) {
  HALK_CHECK_GT(start, 0.0);
  HALK_CHECK_GT(factor, 1.0);
  HALK_CHECK_GT(n, 0);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << "counter " << name << " " << c->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram " << name << " count=" << h->count()
        << " mean=" << h->mean() << " p50=" << h->Quantile(0.50)
        << " p95=" << h->Quantile(0.95) << " p99=" << h->Quantile(0.99)
        << "\n";
  }
  return out.str();
}

}  // namespace halk::serving
