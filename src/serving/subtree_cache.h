#ifndef HALK_SERVING_SUBTREE_CACHE_H_
#define HALK_SERVING_SUBTREE_CACHE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "query/fingerprint.h"

namespace halk::serving {

/// Intermediate-result cache of the planner path: one embedding row
/// (center row ‖ length row, 2·d floats) per unique subtree fingerprint,
/// shared by every serving worker. Where the final-answer LRU cache only
/// pays off when whole queries repeat, this one hits whenever any
/// *subtree* repeats across requests, which diverse workloads do
/// constantly.
///
/// Unlike LruCache it is byte-budgeted — entries are small but unbounded
/// in count — and carries invalidation hooks: each entry is tagged with
/// the sorted relations of its subtree, so a KG update along relation r
/// can evict exactly the embeddings it staled with InvalidateRelation(r).
/// (Entity or parameter updates are coarser — use Clear().)
///
/// Thread-safe; one mutex guards the recency list and index, same
/// reasoning as LruCache.
class SubtreeCache {
 public:
  struct Entry {
    /// Center row followed by length row: 2·d floats.
    std::vector<float> row;
    /// Sorted distinct relations of the subtree (invalidation tags).
    std::vector<int64_t> relations;
  };

  explicit SubtreeCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  SubtreeCache(const SubtreeCache&) = delete;
  SubtreeCache& operator=(const SubtreeCache&) = delete;

  /// Copies the entry into `*out` (if non-null) and marks it
  /// most-recently-used.
  bool Get(const query::Fingerprint& key, Entry* out) HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    if (out != nullptr) *out = it->second->second;
    return true;
  }

  /// Presence probe without recency or counter side effects (explain).
  bool Contains(const query::Fingerprint& key) const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return index_.find(key) != index_.end();
  }

  /// Inserts or overwrites, then evicts least-recently-used entries until
  /// the byte budget holds. An entry larger than the whole budget is
  /// dropped on the floor.
  void Put(const query::Fingerprint& key, Entry entry) HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const size_t entry_bytes = EntryBytes(entry);
    if (entry_bytes > capacity_bytes_) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= EntryBytes(it->second->second);
      it->second->second = std::move(entry);
      bytes_ += entry_bytes;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.emplace_front(key, std::move(entry));
      index_[key] = order_.begin();
      bytes_ += entry_bytes;
    }
    while (bytes_ > capacity_bytes_ && !order_.empty()) {
      bytes_ -= EntryBytes(order_.back().second);
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// Drops every entry whose subtree uses `relation`; returns the number
  /// evicted. Call after adding/removing triples of that relation.
  size_t InvalidateRelation(int64_t relation) HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    size_t dropped = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      const std::vector<int64_t>& tags = it->second.relations;
      if (std::binary_search(tags.begin(), tags.end(), relation)) {
        bytes_ -= EntryBytes(it->second);
        index_.erase(it->first);
        it = order_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    invalidations_ += static_cast<int64_t>(dropped);
    return dropped;
  }

  void Clear() HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    order_.clear();
    index_.clear();
    bytes_ = 0;
  }

  size_t bytes() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return bytes_;
  }
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t size() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return index_.size();
  }
  int64_t hits() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return hits_;
  }
  int64_t misses() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return misses_;
  }
  int64_t evictions() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return evictions_;
  }
  int64_t invalidations() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return invalidations_;
  }

 private:
  /// Charged bytes: payload plus a fixed estimate of list/map node
  /// overhead, so millions of tiny entries cannot blow past the budget.
  static size_t EntryBytes(const Entry& entry) {
    return entry.row.size() * sizeof(float) +
           entry.relations.size() * sizeof(int64_t) + kNodeOverheadBytes;
  }

  static constexpr size_t kNodeOverheadBytes = 96;

  const size_t capacity_bytes_;
  mutable Mutex mu_;
  /// front = most recently used
  std::list<std::pair<query::Fingerprint, Entry>> order_
      HALK_GUARDED_BY(mu_);
  std::unordered_map<
      query::Fingerprint,
      std::list<std::pair<query::Fingerprint, Entry>>::iterator,
      query::FingerprintHash>
      index_ HALK_GUARDED_BY(mu_);
  size_t bytes_ HALK_GUARDED_BY(mu_) = 0;
  int64_t hits_ HALK_GUARDED_BY(mu_) = 0;
  int64_t misses_ HALK_GUARDED_BY(mu_) = 0;
  int64_t evictions_ HALK_GUARDED_BY(mu_) = 0;
  int64_t invalidations_ HALK_GUARDED_BY(mu_) = 0;
};

}  // namespace halk::serving

#endif  // HALK_SERVING_SUBTREE_CACHE_H_
