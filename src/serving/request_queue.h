#ifndef HALK_SERVING_REQUEST_QUEUE_H_
#define HALK_SERVING_REQUEST_QUEUE_H_

#include <chrono>
#include <deque>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace halk::serving {

/// Bounded multi-producer/multi-consumer FIFO used as the serving
/// admission queue. Producers fail fast (kUnavailable) when the queue is
/// full — backpressure is surfaced to the client instead of buffering
/// unboundedly — and consumers pop in micro-batches, lingering briefly for
/// more work when the queue runs shallow.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: kUnavailable when full or closed.
  [[nodiscard]] Status TryPush(T item) HALK_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return Status::Unavailable("queue closed");
      if (items_.size() >= capacity_) {
        return Status::Unavailable("queue full");
      }
      items_.push_back(std::move(item));
    }
    ready_.NotifyOne();
    return Status::OK();
  }

  /// Blocks until at least one item (or close), then drains up to
  /// `max_items`, waiting at most `linger` for stragglers to coalesce a
  /// fuller batch. Returns false only when the queue is closed and empty —
  /// the consumer's signal to exit.
  bool PopBatch(std::vector<T>* out, size_t max_items,
                std::chrono::microseconds linger) HALK_EXCLUDES(mu_) {
    out->clear();
    MutexLock lock(mu_);
    ready_.Wait(mu_, [this]() HALK_REQUIRES(mu_) {
      return !items_.empty() || closed_;
    });
    if (items_.empty()) return false;  // closed and drained
    auto take = [&]() HALK_REQUIRES(mu_) {
      while (!items_.empty() && out->size() < max_items) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
      }
    };
    take();
    if (out->size() < max_items && linger.count() > 0 && !closed_) {
      // Linger until the batch fills, the queue closes, or the window
      // elapses — re-arming after each partial arrival so stragglers keep
      // coalescing into this batch.
      const auto deadline = std::chrono::steady_clock::now() + linger;
      while (out->size() < max_items && !closed_) {
        if (!ready_.WaitUntil(mu_, deadline, [this]() HALK_REQUIRES(mu_) {
              return !items_.empty() || closed_;
            })) {
          break;  // window elapsed with nothing new
        }
        take();
      }
    }
    return true;
  }

  /// Rejects future pushes and wakes all consumers; already-queued items
  /// are still handed out so shutdown drains rather than drops.
  void Close() HALK_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.NotifyAll();
  }

  size_t size() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar ready_;
  std::deque<T> items_ HALK_GUARDED_BY(mu_);
  bool closed_ HALK_GUARDED_BY(mu_) = false;
};

}  // namespace halk::serving

#endif  // HALK_SERVING_REQUEST_QUEUE_H_

