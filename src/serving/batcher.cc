#include "serving/batcher.h"

#include <unordered_map>

#include "common/logging.h"
#include "query/fingerprint.h"

namespace halk::serving {

std::vector<MicroBatch> FormBatches(const std::vector<BatchItem>& items,
                                    size_t max_batch_size) {
  HALK_CHECK_GT(max_batch_size, 0u);
  std::vector<MicroBatch> batches;
  // Maps a structure layout to the batch currently being filled for it;
  // once a batch reaches max_batch_size the next item opens a fresh one.
  std::unordered_map<query::Fingerprint, size_t, query::FingerprintHash>
      open_batch;
  for (const BatchItem& item : items) {
    const query::Fingerprint layout = query::StructureFingerprint(*item.graph);
    auto it = open_batch.find(layout);
    if (it == open_batch.end() ||
        batches[it->second].items.size() >= max_batch_size) {
      open_batch[layout] = batches.size();
      batches.emplace_back();
      batches.back().items.push_back(item);
    } else {
      batches[it->second].items.push_back(item);
    }
  }
  return batches;
}

}  // namespace halk::serving
