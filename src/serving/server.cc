#include "serving/server.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "core/topk.h"
#include "obs/trace.h"
#include "query/dnf.h"
#include "serving/batcher.h"

namespace halk::serving {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Unpacks a (distance, entity)-ordered ranking into the answer arrays.
void FillAnswer(const std::vector<core::ScoredEntity>& ranking,
                TopKAnswer* out) {
  out->entities.reserve(ranking.size());
  out->distances.reserve(ranking.size());
  for (const core::ScoredEntity& s : ranking) {
    out->entities.push_back(s.entity);
    out->distances.push_back(s.distance);
  }
}

}  // namespace

QueryServer::QueryServer(core::QueryModel* model,
                         const kg::KnowledgeGraph* kg,
                         const ServerOptions& options)
    : model_(model),
      kg_(kg),
      options_(options),
      queue_(options.queue_capacity),
      cache_(options.enable_cache ? options.cache_capacity : 0),
      submitted_(metrics_.GetCounter("serving.submitted")),
      rejected_(metrics_.GetCounter("serving.rejected")),
      invalid_(metrics_.GetCounter("serving.invalid")),
      completed_(metrics_.GetCounter("serving.completed")),
      expired_(metrics_.GetCounter("serving.deadline_expired")),
      cache_hits_(metrics_.GetCounter("serving.cache_hits")),
      cache_misses_(metrics_.GetCounter("serving.cache_misses")),
      latency_us_(metrics_.GetHistogram(
          "serving.latency_us", Histogram::ExponentialBounds(1.0, 2.0, 26))),
      batch_size_(metrics_.GetHistogram(
          "serving.batch_size", Histogram::ExponentialBounds(1.0, 2.0, 12))),
      queue_depth_(metrics_.GetGauge("serving.queue_depth")),
      in_flight_(metrics_.GetGauge("serving.in_flight")) {
  HALK_CHECK(model != nullptr);
  HALK_CHECK_GT(options_.num_workers, 0);
  HALK_CHECK_GT(options_.max_batch_size, 0u);
  HALK_CHECK_GT(options_.queue_capacity, 0u);
  if (options_.tracer != nullptr &&
      options_.slow_query_threshold.count() > 0) {
    slow_log_ = std::make_unique<obs::SlowQueryLog>(
        options_.slow_query_log_capacity,
        options_.slow_query_threshold.count() * 1000);
  }
  if (options_.num_shards > 0) {
    shard::ShardOptions shard_options;
    shard_options.num_shards = options_.num_shards;
    shard_options.replication = options_.shard_replication;
    coordinator_ = std::make_unique<shard::ShardCoordinator>(
        model, shard_options, options_.shard_faults, &metrics_);
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // After the serving workers drain, no one submits shard tasks anymore.
  if (coordinator_ != nullptr) coordinator_->Stop();
}

Status QueryServer::ValidateQuery(const query::QueryGraph& query,
                                  int64_t k) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  HALK_RETURN_NOT_OK(query.Validate(/*grounded=*/true));
  const core::ModelConfig& config = model_->config();
  for (const query::QueryNode& n : query.nodes()) {
    if (!model_->Supports(n.op)) {
      return Status::InvalidArgument(
          std::string("model does not support operator ") +
          query::OpTypeName(n.op));
    }
    if (n.op == query::OpType::kAnchor &&
        (n.anchor_entity < 0 || n.anchor_entity >= config.num_entities)) {
      return Status::InvalidArgument("anchor entity out of range");
    }
    if (n.op == query::OpType::kProjection &&
        (n.relation < 0 || n.relation >= config.num_relations)) {
      return Status::InvalidArgument("relation out of range");
    }
  }
  return Status::OK();
}

Result<std::future<Result<TopKAnswer>>> QueryServer::Submit(
    const query::QueryGraph& query, int64_t k,
    std::chrono::microseconds timeout) {
  // order: acquire pairs with the seq_cst exchange in Shutdown so a
  // submitter that sees the flag also sees the queue already closed.
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::Unavailable("server is shut down");
  }
  Status valid = ValidateQuery(query, k);
  if (!valid.ok()) {
    invalid_->Increment();
    return valid;
  }
  submitted_->Increment();
  const Clock::time_point now = Clock::now();
  const query::Fingerprint key = query::CanonicalFingerprint(query);

  // One relaxed atomic load when tracing is off (StartTrace returns 0 and
  // every span helper below no-ops on the inactive context).
  obs::TraceContext trace;
  uint32_t root_span = 0;
  int64_t submit_ns = 0;
  if (options_.tracer != nullptr) {
    const uint64_t trace_id = options_.tracer->StartTrace();
    if (trace_id != 0) {
      // The root span id is pre-allocated so every phase span can parent
      // it; the root itself is recorded when the request finishes.
      root_span = options_.tracer->NextSpanId();
      trace = {options_.tracer, trace_id, root_span};
      submit_ns = obs::NowNs();
    }
  }

  if (options_.enable_cache) {
    obs::SpanGuard lookup(trace, "cache_lookup");
    CachedAnswer cached;
    if (cache_.Get(key, &cached) &&
        static_cast<int64_t>(cached.entities.size()) >= std::min<int64_t>(
            k, model_->config().num_entities)) {
      cache_hits_->Increment();
      completed_->Increment();
      TopKAnswer answer;
      const size_t take = static_cast<size_t>(
          std::min<int64_t>(k, static_cast<int64_t>(cached.entities.size())));
      answer.entities.assign(cached.entities.begin(),
                             cached.entities.begin() + take);
      answer.distances.assign(cached.distances.begin(),
                              cached.distances.begin() + take);
      answer.from_cache = true;
      answer.trace_id = trace.trace_id;
      latency_us_->Observe(MicrosSince(now));
      if (trace.active()) {
        lookup.Annotate("hit", 1.0);
        lookup.End();
        obs::RecordSpan({trace.tracer, trace.trace_id, 0}, "request",
                        submit_ns, obs::NowNs(), {{"cache_hit", 1.0}},
                        root_span);
      }
      std::promise<Result<TopKAnswer>> ready;
      ready.set_value(std::move(answer));
      return ready.get_future();
    }
    // Not counted as a miss yet: a twin in flight may fill the cache
    // before a worker reaches this request. The worker-side triage counts
    // each request as exactly one hit or one miss.
    lookup.Annotate("hit", 0.0);
  }

  auto request = std::make_unique<PendingRequest>();
  request->graph = query;
  request->k = k;
  request->key = key;
  request->submit_time = now;
  request->has_deadline = timeout.count() > 0;
  request->deadline =
      request->has_deadline ? now + timeout : Clock::time_point::max();
  request->trace = trace;
  request->root_span = root_span;
  request->submit_ns = submit_ns;
  std::future<Result<TopKAnswer>> future = request->promise.get_future();

  // Bumped before the push so a worker that picks the request up
  // immediately can never observe (and decrement) a count it predates.
  queue_depth_->Add(1.0);
  in_flight_->Add(1.0);
  Status pushed = queue_.TryPush(std::move(request));
  if (!pushed.ok()) {
    queue_depth_->Add(-1.0);
    in_flight_->Add(-1.0);
    rejected_->Increment();
    return pushed;
  }
  return future;
}

Result<TopKAnswer> QueryServer::Answer(const query::QueryGraph& query,
                                       int64_t k,
                                       std::chrono::microseconds timeout) {
  HALK_ASSIGN_OR_RETURN(std::future<Result<TopKAnswer>> future,
                        Submit(query, k, timeout));
  return future.get();
}

void QueryServer::Finish(PendingRequest* request, Result<TopKAnswer> result) {
  if (result.ok()) {
    completed_->Increment();
    result->trace_id = request->trace.trace_id;
  }
  latency_us_->Observe(MicrosSince(request->submit_time));
  in_flight_->Add(-1.0);
  if (request->trace.active()) {
    const int64_t end_ns = obs::NowNs();
    obs::RecordSpan({request->trace.tracer, request->trace.trace_id, 0},
                    "request", request->submit_ns, end_ns,
                    {{"ok", result.ok() ? 1.0 : 0.0}}, request->root_span);
    if (slow_log_ != nullptr &&
        end_ns - request->submit_ns >= slow_log_->threshold_ns()) {
      slow_log_->Offer(
          request->key.ToHex(),
          request->trace.tracer->Collect(request->trace.trace_id));
    }
  }
  request->promise.set_value(std::move(result));
}

void QueryServer::WorkerLoop() {
  std::vector<std::unique_ptr<PendingRequest>> chunk;
  while (queue_.PopBatch(&chunk, options_.max_batch_size,
                         options_.batch_linger)) {
    ServeChunk(&chunk);
    chunk.clear();
  }
}

void QueryServer::ServeChunk(
    std::vector<std::unique_ptr<PendingRequest>>* chunk) {
  const Clock::time_point now = Clock::now();
  bool any_traced = false;
  for (const std::unique_ptr<PendingRequest>& request : *chunk) {
    if (request->trace.active()) any_traced = true;
  }
  const int64_t pickup_ns = any_traced ? obs::NowNs() : 0;
  // Admission-to-service triage: expired requests fail fast, and requests
  // answered by a twin that completed while they sat in the queue are
  // served straight from the cache.
  std::vector<std::unique_ptr<PendingRequest>> live;
  live.reserve(chunk->size());
  for (std::unique_ptr<PendingRequest>& request : *chunk) {
    queue_depth_->Add(-1.0);
    // The queue-wait phase is timed after the fact: its start was stamped
    // at Submit, its end is this pickup.
    obs::RecordSpan(request->trace, "queue_wait", request->submit_ns,
                    pickup_ns);
    if (request->has_deadline && now > request->deadline) {
      expired_->Increment();
      Finish(request.get(),
             Status::DeadlineExceeded("expired while queued"));
      continue;
    }
    if (options_.enable_cache) {
      obs::SpanGuard lookup(request->trace, "cache_lookup");
      CachedAnswer cached;
      if (cache_.Get(request->key, &cached) &&
          static_cast<int64_t>(cached.entities.size()) >=
              std::min<int64_t>(request->k, model_->config().num_entities)) {
        TopKAnswer answer;
        const size_t take = static_cast<size_t>(std::min<int64_t>(
            request->k, static_cast<int64_t>(cached.entities.size())));
        answer.entities.assign(cached.entities.begin(),
                               cached.entities.begin() + take);
        answer.distances.assign(cached.distances.begin(),
                                cached.distances.begin() + take);
        answer.from_cache = true;
        cache_hits_->Increment();
        lookup.Annotate("hit", 1.0);
        lookup.End();
        Finish(request.get(), std::move(answer));
        continue;
      }
      cache_misses_->Increment();
      lookup.Annotate("hit", 0.0);
    }
    live.push_back(std::move(request));
  }
  if (live.empty()) return;

  // DNF-expand every live request; branches (not requests) are the unit of
  // batching, so one EmbedQueries call can mix branches of many requests.
  std::vector<std::vector<query::QueryGraph>> branches(live.size());
  std::vector<BatchItem> items;
  for (size_t r = 0; r < live.size(); ++r) {
    obs::SpanGuard dnf(live[r]->trace, "dnf_expand");
    branches[r] = query::ToDnf(live[r]->graph);
    dnf.Annotate("branches", static_cast<double>(branches[r].size()));
    dnf.End();
    for (const query::QueryGraph& branch : branches[r]) {
      items.push_back({r, &branch});
    }
  }

  // Batch assembly is one pass shared by the whole chunk, so every traced
  // request gets a batch_assembly span with the same endpoints.
  const int64_t assembly_start = any_traced ? obs::NowNs() : 0;
  const std::vector<MicroBatch> micro_batches =
      FormBatches(items, options_.max_batch_size);
  if (any_traced) {
    const int64_t assembly_end = obs::NowNs();
    for (const std::unique_ptr<PendingRequest>& request : live) {
      obs::RecordSpan(request->trace, "batch_assembly", assembly_start,
                      assembly_end,
                      {{"batches", static_cast<double>(micro_batches.size())},
                       {"chunk_requests", static_cast<double>(live.size())}});
    }
  }

  // Per-request accumulation over branch distances (the DNF union
  // semantics, as in Evaluator::ScoreAllEntities). Unsharded, the worker
  // keeps a running elementwise minimum and ranks in place; sharded, it
  // collects each request's embedded branches (cheap tensor handles) and
  // hands ranking to the scatter-gather coordinator.
  const bool sharded = coordinator_ != nullptr;
  std::vector<std::vector<float>> best(live.size());
  std::vector<shard::BranchSet> branch_sets(sharded ? live.size() : 0);
  std::vector<float> dist;
  std::vector<size_t> batch_requests;  // distinct request indices per batch
  for (const MicroBatch& batch : micro_batches) {
    batch_size_->Observe(static_cast<double>(batch.items.size()));
    std::vector<const query::QueryGraph*> graphs;
    graphs.reserve(batch.items.size());
    for (const BatchItem& item : batch.items) graphs.push_back(item.graph);
    const int64_t embed_start = any_traced ? obs::NowNs() : 0;
    core::EmbeddingBatch embedding = model_->EmbedQueries(graphs);
    if (any_traced) {
      // A micro-batch embeds branches of many requests in one model call;
      // each participating trace records the shared embed interval.
      const int64_t embed_end = obs::NowNs();
      batch_requests.clear();
      for (const BatchItem& item : batch.items) {
        batch_requests.push_back(item.request_index);
      }
      std::sort(batch_requests.begin(), batch_requests.end());
      batch_requests.erase(
          std::unique(batch_requests.begin(), batch_requests.end()),
          batch_requests.end());
      for (const size_t r : batch_requests) {
        obs::RecordSpan(live[r]->trace, "embed", embed_start, embed_end,
                        {{"rows", static_cast<double>(batch.items.size())}});
      }
    }
    for (size_t row = 0; row < batch.items.size(); ++row) {
      const size_t r = batch.items[row].request_index;
      if (sharded) {
        shard::BranchSet& set = branch_sets[r];
        if (set.embeddings.empty() ||
            set.embeddings.back().a.impl() != embedding.a.impl()) {
          set.embeddings.push_back(embedding);
        }
        set.rows.emplace_back(set.embeddings.size() - 1,
                              static_cast<int64_t>(row));
        continue;
      }
      const bool traced = live[r]->trace.active();
      const int64_t score_start = traced ? obs::NowNs() : 0;
      model_->DistancesToAll(embedding, static_cast<int64_t>(row), &dist);
      if (best[r].empty()) {
        best[r] = dist;
      } else {
        for (size_t i = 0; i < dist.size(); ++i) {
          best[r][i] = std::min(best[r][i], dist[i]);
        }
      }
      if (traced) {
        obs::RecordSpan(live[r]->trace, "score", score_start, obs::NowNs(),
                        {{"entities", static_cast<double>(dist.size())}});
      }
    }
  }

  for (size_t r = 0; r < live.size(); ++r) {
    TopKAnswer answer;
    if (sharded) {
      shard::ShardedTopK top = coordinator_->TopKEmbedded(
          branch_sets[r], live[r]->k, live[r]->deadline, live[r]->trace);
      if (!top.ok() && !top.partial()) {
        Finish(live[r].get(), top.status);
        continue;
      }
      FillAnswer(top.entries, &answer);
      answer.coverage = top.coverage;
      answer.completeness = top.status;
    } else {
      obs::SpanGuard rank(live[r]->trace, "rank");
      FillAnswer(core::TopKFromDistances(best[r], live[r]->k), &answer);
      rank.End();
    }
    // Degraded answers are never cached: the outage must not outlive the
    // replicas that caused it.
    if (options_.enable_cache && answer.coverage == 1.0) {
      CachedAnswer entry{answer.entities, answer.distances};
      cache_.Put(live[r]->key, std::move(entry));
    }
    Finish(live[r].get(), std::move(answer));
  }
}

std::string QueryServer::DumpMetrics() const {
  std::ostringstream out;
  out << metrics_.DumpText();
  const int64_t hits = cache_hits_->value();
  const int64_t misses = cache_misses_->value();
  const int64_t lookups = hits + misses;
  out << "derived serving.cache_hit_rate "
      << (lookups == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(lookups))
      << "\n";
  return out.str();
}

}  // namespace halk::serving
