#include "serving/server.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "core/topk.h"
#include "kg/dictionary.h"
#include "obs/trace.h"
#include "plan/explain.h"
#include "query/dnf.h"
#include "serving/batcher.h"

namespace halk::serving {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Unpacks a (distance, entity)-ordered ranking into the answer arrays.
void FillAnswer(const std::vector<core::ScoredEntity>& ranking,
                TopKAnswer* out) {
  out->entities.reserve(ranking.size());
  out->distances.reserve(ranking.size());
  for (const core::ScoredEntity& s : ranking) {
    out->entities.push_back(s.entity);
    out->distances.push_back(s.distance);
  }
}

}  // namespace

QueryServer::QueryServer(core::QueryModel* model,
                         const kg::KnowledgeGraph* kg,
                         const ServerOptions& options)
    : model_(model),
      kg_(kg),
      options_(options),
      queue_(options.queue_capacity),
      cache_(options.enable_cache ? options.cache_capacity : 0),
      submitted_(metrics_.GetCounter("serving.submitted")),
      rejected_(metrics_.GetCounter("serving.rejected")),
      invalid_(metrics_.GetCounter("serving.invalid")),
      completed_(metrics_.GetCounter("serving.completed")),
      expired_(metrics_.GetCounter("serving.deadline_expired")),
      cache_hits_(metrics_.GetCounter("serving.cache_hits")),
      cache_misses_(metrics_.GetCounter("serving.cache_misses")),
      latency_us_(metrics_.GetHistogram(
          "serving.latency_us", Histogram::ExponentialBounds(1.0, 2.0, 26))),
      batch_size_(metrics_.GetHistogram(
          "serving.batch_size", Histogram::ExponentialBounds(1.0, 2.0, 12))),
      queue_depth_(metrics_.GetGauge("serving.queue_depth")),
      in_flight_(metrics_.GetGauge("serving.in_flight")),
      plan_requests_(metrics_.GetCounter("plan.requests")),
      plan_fallback_(metrics_.GetCounter("plan.fallback")),
      plan_nodes_(metrics_.GetCounter("plan.nodes")),
      plan_unique_nodes_(metrics_.GetCounter("plan.unique_nodes")),
      plan_node_evals_(metrics_.GetCounter("plan.node_evals")),
      plan_cache_hits_(metrics_.GetCounter("plan.subtree_cache_hits")),
      plan_cache_misses_(metrics_.GetCounter("plan.subtree_cache_misses")),
      plan_op_batches_(metrics_.GetCounter("plan.op_batches")),
      plan_build_us_(metrics_.GetHistogram(
          "plan.build_us", Histogram::ExponentialBounds(1.0, 2.0, 20))),
      plan_exec_us_(metrics_.GetHistogram(
          "plan.exec_us", Histogram::ExponentialBounds(1.0, 2.0, 26))),
      plan_cache_bytes_(metrics_.GetGauge("plan.subtree_cache_bytes")),
      plan_qerror_(metrics_.GetHistogram(
          "plan.qerror", Histogram::ExponentialBounds(1.0, 2.0, 16))) {
  for (size_t op = 0; op < obs::kNumOpKinds; ++op) {
    plan_node_us_[op] = metrics_.GetHistogram(
        "plan.node_us", Histogram::ExponentialBounds(1.0, 2.0, 20),
        {{"op", query::OpTypeName(static_cast<query::OpType>(op))}});
  }
  HALK_CHECK(model != nullptr);
  HALK_CHECK_GT(options_.num_workers, 0);
  HALK_CHECK_GT(options_.max_batch_size, 0u);
  HALK_CHECK_GT(options_.queue_capacity, 0u);
  if (options_.tracer != nullptr &&
      options_.slow_query_threshold.count() > 0) {
    slow_log_ = std::make_unique<obs::SlowQueryLog>(
        options_.slow_query_log_capacity,
        options_.slow_query_threshold.count() * 1000);
  }
  if (options_.num_shards > 0) {
    shard::ShardOptions shard_options;
    shard_options.num_shards = options_.num_shards;
    shard_options.replication = options_.shard_replication;
    shard_options.pin_threads = options_.shard_pin_threads;
    coordinator_ = std::make_unique<shard::ShardCoordinator>(
        model, shard_options, options_.shard_faults, &metrics_);
  }
  if ((options_.analytics || options_.use_feedback) &&
      options_.query_stats_capacity > 0) {
    query_stats_ = std::make_unique<obs::QueryStatsStore>(
        options_.query_stats_capacity, /*feedback_capacity=*/4096,
        options_.feedback_min_samples);
  }
  if (options_.use_planner) {
    // Baseline models without an operator-level interface fall back to the
    // legacy per-layout batching path (plan.fallback counts the requests).
    core::OperatorModel* ops = model_->AsOperatorModel();
    if (ops != nullptr) {
      if (options_.subtree_cache_bytes > 0) {
        subtree_cache_ =
            std::make_unique<SubtreeCache>(options_.subtree_cache_bytes);
      }
      const kg::GraphStats* stats =
          (kg_ != nullptr && kg_->finalized()) ? &kg_->stats() : nullptr;
      plan::PlannerOptions planner_options;
      planner_options.apply_rewrites = options_.planner_rewrites;
      planner_options.feedback =
          options_.use_feedback ? query_stats_.get() : nullptr;
      planner_ = std::make_unique<plan::Planner>(
          stats, model_->config().num_entities, planner_options);
      plan_executor_ = std::make_unique<plan::PlanExecutor>(
          model_, ops, subtree_cache_.get());
    }
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // After the serving workers drain, no one submits shard tasks anymore.
  if (coordinator_ != nullptr) coordinator_->Stop();
}

Status QueryServer::ValidateQuery(const query::QueryGraph& query,
                                  int64_t k) const {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  HALK_RETURN_NOT_OK(query.Validate(/*grounded=*/true));
  const core::ModelConfig& config = model_->config();
  for (const query::QueryNode& n : query.nodes()) {
    if (!model_->Supports(n.op)) {
      return Status::InvalidArgument(
          std::string("model does not support operator ") +
          query::OpTypeName(n.op));
    }
    if (n.op == query::OpType::kAnchor &&
        (n.anchor_entity < 0 || n.anchor_entity >= config.num_entities)) {
      return Status::InvalidArgument("anchor entity out of range");
    }
    if (n.op == query::OpType::kProjection &&
        (n.relation < 0 || n.relation >= config.num_relations)) {
      return Status::InvalidArgument("relation out of range");
    }
  }
  return Status::OK();
}

Result<std::future<Result<TopKAnswer>>> QueryServer::Submit(
    const query::QueryGraph& query, int64_t k,
    std::chrono::microseconds timeout) {
  // order: acquire pairs with the seq_cst exchange in Shutdown so a
  // submitter that sees the flag also sees the queue already closed.
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::Unavailable("server is shut down");
  }
  Status valid = ValidateQuery(query, k);
  if (!valid.ok()) {
    invalid_->Increment();
    return valid;
  }
  submitted_->Increment();
  const Clock::time_point now = Clock::now();
  const query::Fingerprint key = query::CanonicalFingerprint(query);

  // One relaxed atomic load when tracing is off (StartTrace returns 0 and
  // every span helper below no-ops on the inactive context).
  obs::TraceContext trace;
  uint32_t root_span = 0;
  int64_t submit_ns = 0;
  if (options_.tracer != nullptr) {
    const uint64_t trace_id = options_.tracer->StartTrace();
    if (trace_id != 0) {
      // The root span id is pre-allocated so every phase span can parent
      // it; the root itself is recorded when the request finishes.
      root_span = options_.tracer->NextSpanId();
      trace = {options_.tracer, trace_id, root_span};
      submit_ns = obs::NowNs();
    }
  }

  if (options_.enable_cache) {
    obs::SpanGuard lookup(trace, "cache_lookup");
    CachedAnswer cached;
    if (cache_.Get(key, &cached) &&
        static_cast<int64_t>(cached.entities.size()) >= std::min<int64_t>(
            k, model_->config().num_entities)) {
      cache_hits_->Increment();
      completed_->Increment();
      TopKAnswer answer;
      const size_t take = static_cast<size_t>(
          std::min<int64_t>(k, static_cast<int64_t>(cached.entities.size())));
      answer.entities.assign(cached.entities.begin(),
                             cached.entities.begin() + take);
      answer.distances.assign(cached.distances.begin(),
                              cached.distances.begin() + take);
      answer.from_cache = true;
      answer.trace_id = trace.trace_id;
      const double latency_us = MicrosSince(now);
      latency_us_->Observe(latency_us, trace.trace_id);
      if (options_.slo != nullptr) {
        options_.slo->RecordRequest(latency_us, /*ok=*/true);
      }
      if (trace.active()) {
        lookup.Annotate("hit", 1.0);
        lookup.End();
        obs::RecordSpan({trace.tracer, trace.trace_id, 0}, "request",
                        submit_ns, obs::NowNs(), {{"cache_hit", 1.0}},
                        root_span);
      }
      if (options_.serve_journal != nullptr) {
        options_.serve_journal->Record(key.ToHex(), "OK", latency_us, k,
                                       /*coverage=*/1.0, /*cache_hit=*/true,
                                       trace.trace_id);
      }
      if (query_stats_ != nullptr) {
        obs::QueryObservation observation;
        observation.latency_us = latency_us;
        observation.cache_hit = true;
        query_stats_->Record(key.ToHex(), observation);
      }
      std::promise<Result<TopKAnswer>> ready;
      ready.set_value(std::move(answer));
      return ready.get_future();
    }
    // Not counted as a miss yet: a twin in flight may fill the cache
    // before a worker reaches this request. The worker-side triage counts
    // each request as exactly one hit or one miss.
    lookup.Annotate("hit", 0.0);
  }

  auto request = std::make_unique<PendingRequest>();
  request->graph = query;
  request->k = k;
  request->key = key;
  request->submit_time = now;
  request->has_deadline = timeout.count() > 0;
  request->deadline =
      request->has_deadline ? now + timeout : Clock::time_point::max();
  request->trace = trace;
  request->root_span = root_span;
  request->submit_ns = submit_ns;
  std::future<Result<TopKAnswer>> future = request->promise.get_future();

  // Bumped before the push so a worker that picks the request up
  // immediately can never observe (and decrement) a count it predates.
  queue_depth_->Add(1.0);
  in_flight_->Add(1.0);
  Status pushed = queue_.TryPush(std::move(request));
  if (!pushed.ok()) {
    queue_depth_->Add(-1.0);
    in_flight_->Add(-1.0);
    rejected_->Increment();
    return pushed;
  }
  return future;
}

Result<TopKAnswer> QueryServer::Answer(const query::QueryGraph& query,
                                       int64_t k,
                                       std::chrono::microseconds timeout) {
  HALK_ASSIGN_OR_RETURN(std::future<Result<TopKAnswer>> future,
                        Submit(query, k, timeout));
  return future.get();
}

void QueryServer::Finish(PendingRequest* request, Result<TopKAnswer> result) {
  if (result.ok()) {
    completed_->Increment();
    result->trace_id = request->trace.trace_id;
  }
  const double latency_us = MicrosSince(request->submit_time);
  // The trace id rides along as the landing bucket's exemplar, so a
  // scraped latency histogram links back to a concrete trace.
  latency_us_->Observe(latency_us, request->trace.trace_id);
  if (options_.slo != nullptr) {
    options_.slo->RecordRequest(latency_us, result.ok());
  }
  in_flight_->Add(-1.0);
  if (request->trace.active()) {
    const int64_t end_ns = obs::NowNs();
    obs::RecordSpan({request->trace.tracer, request->trace.trace_id, 0},
                    "request", request->submit_ns, end_ns,
                    {{"ok", result.ok() ? 1.0 : 0.0}}, request->root_span);
    if (slow_log_ != nullptr &&
        end_ns - request->submit_ns >= slow_log_->threshold_ns()) {
      slow_log_->Offer(
          request->key.ToHex(),
          request->trace.tracer->Collect(request->trace.trace_id),
          request->plan_node_count, request->plan_dedup);
    }
  }
  if (options_.serve_journal != nullptr) {
    options_.serve_journal->Record(
        request->key.ToHex(),
        result.ok() ? "OK" : StatusCodeToString(result.status().code()),
        latency_us, request->k, result.ok() ? result->coverage : 0.0,
        result.ok() && result->from_cache, request->trace.trace_id,
        request->plan_node_count, request->plan_dedup);
  }
  if (query_stats_ != nullptr) {
    obs::QueryObservation observation;
    observation.structure = std::move(request->structure);
    observation.latency_us = latency_us;
    observation.cache_hit = result.ok() && result->from_cache;
    observation.plan_nodes = request->plan_node_count;
    observation.dedup_ratio = request->plan_dedup;
    observation.worst_qerror = request->worst_qerror;
    observation.op_ns = request->op_ns;
    query_stats_->Record(request->key.ToHex(), observation);
  }
  request->promise.set_value(std::move(result));
}

void QueryServer::WorkerLoop() {
  std::vector<std::unique_ptr<PendingRequest>> chunk;
  while (queue_.PopBatch(&chunk, options_.max_batch_size,
                         options_.batch_linger)) {
    ServeChunk(&chunk);
    chunk.clear();
  }
}

void QueryServer::ServeChunk(
    std::vector<std::unique_ptr<PendingRequest>>* chunk) {
  const Clock::time_point now = Clock::now();
  bool any_traced = false;
  for (const std::unique_ptr<PendingRequest>& request : *chunk) {
    if (request->trace.active()) any_traced = true;
  }
  const int64_t pickup_ns = any_traced ? obs::NowNs() : 0;
  // Admission-to-service triage: expired requests fail fast, and requests
  // answered by a twin that completed while they sat in the queue are
  // served straight from the cache.
  std::vector<std::unique_ptr<PendingRequest>> live;
  live.reserve(chunk->size());
  for (std::unique_ptr<PendingRequest>& request : *chunk) {
    queue_depth_->Add(-1.0);
    // The queue-wait phase is timed after the fact: its start was stamped
    // at Submit, its end is this pickup.
    obs::RecordSpan(request->trace, "queue_wait", request->submit_ns,
                    pickup_ns);
    if (request->has_deadline && now > request->deadline) {
      expired_->Increment();
      Finish(request.get(),
             Status::DeadlineExceeded("expired while queued"));
      continue;
    }
    if (options_.enable_cache) {
      obs::SpanGuard lookup(request->trace, "cache_lookup");
      CachedAnswer cached;
      if (cache_.Get(request->key, &cached) &&
          static_cast<int64_t>(cached.entities.size()) >=
              std::min<int64_t>(request->k, model_->config().num_entities)) {
        TopKAnswer answer;
        const size_t take = static_cast<size_t>(std::min<int64_t>(
            request->k, static_cast<int64_t>(cached.entities.size())));
        answer.entities.assign(cached.entities.begin(),
                               cached.entities.begin() + take);
        answer.distances.assign(cached.distances.begin(),
                                cached.distances.begin() + take);
        answer.from_cache = true;
        cache_hits_->Increment();
        lookup.Annotate("hit", 1.0);
        lookup.End();
        Finish(request.get(), std::move(answer));
        continue;
      }
      cache_misses_->Increment();
      lookup.Annotate("hit", 0.0);
    }
    live.push_back(std::move(request));
  }
  if (live.empty()) return;

  // DNF-expand every live request; branches (not requests) are the unit of
  // planning and batching, so one plan (or one EmbedQueries call) can mix
  // branches of many requests.
  std::vector<std::vector<query::QueryGraph>> branches(live.size());
  for (size_t r = 0; r < live.size(); ++r) {
    obs::SpanGuard dnf(live[r]->trace, "dnf_expand");
    branches[r] = query::ToDnf(live[r]->graph);
    dnf.Annotate("branches", static_cast<double>(branches[r].size()));
    dnf.End();
  }

  if (planner_ != nullptr) {
    ServeChunkPlanned(&live, branches, any_traced);
  } else {
    if (options_.use_planner) {
      plan_fallback_->Increment(static_cast<int64_t>(live.size()));
    }
    ServeChunkLegacy(&live, branches, any_traced);
  }
}

void QueryServer::ServeChunkLegacy(
    std::vector<std::unique_ptr<PendingRequest>>* live_ptr,
    const std::vector<std::vector<query::QueryGraph>>& branches,
    bool any_traced) {
  std::vector<std::unique_ptr<PendingRequest>>& live = *live_ptr;
  std::vector<BatchItem> items;
  for (size_t r = 0; r < live.size(); ++r) {
    for (const query::QueryGraph& branch : branches[r]) {
      items.push_back({r, &branch});
    }
  }

  // Batch assembly is one pass shared by the whole chunk, so every traced
  // request gets a batch_assembly span with the same endpoints.
  const int64_t assembly_start = any_traced ? obs::NowNs() : 0;
  const std::vector<MicroBatch> micro_batches =
      FormBatches(items, options_.max_batch_size);
  if (any_traced) {
    const int64_t assembly_end = obs::NowNs();
    for (const std::unique_ptr<PendingRequest>& request : live) {
      obs::RecordSpan(request->trace, "batch_assembly", assembly_start,
                      assembly_end,
                      {{"batches", static_cast<double>(micro_batches.size())},
                       {"chunk_requests", static_cast<double>(live.size())}});
    }
  }

  // Per-request accumulation over branch distances (the DNF union
  // semantics, as in Evaluator::ScoreAllEntities). Unsharded, the worker
  // keeps a running elementwise minimum and ranks in place; sharded, it
  // collects each request's embedded branches (cheap tensor handles) and
  // hands ranking to the scatter-gather coordinator.
  const bool sharded = coordinator_ != nullptr;
  std::vector<std::vector<float>> best(live.size());
  std::vector<shard::BranchSet> branch_sets(sharded ? live.size() : 0);
  std::vector<float> dist;
  std::vector<size_t> batch_requests;  // distinct request indices per batch
  for (const MicroBatch& batch : micro_batches) {
    batch_size_->Observe(static_cast<double>(batch.items.size()));
    std::vector<const query::QueryGraph*> graphs;
    graphs.reserve(batch.items.size());
    for (const BatchItem& item : batch.items) graphs.push_back(item.graph);
    const int64_t embed_start = any_traced ? obs::NowNs() : 0;
    core::EmbeddingBatch embedding = model_->EmbedQueries(graphs);
    if (any_traced) {
      // A micro-batch embeds branches of many requests in one model call;
      // each participating trace records the shared embed interval.
      const int64_t embed_end = obs::NowNs();
      batch_requests.clear();
      for (const BatchItem& item : batch.items) {
        batch_requests.push_back(item.request_index);
      }
      std::sort(batch_requests.begin(), batch_requests.end());
      batch_requests.erase(
          std::unique(batch_requests.begin(), batch_requests.end()),
          batch_requests.end());
      for (const size_t r : batch_requests) {
        obs::RecordSpan(live[r]->trace, "embed", embed_start, embed_end,
                        {{"rows", static_cast<double>(batch.items.size())}});
      }
    }
    for (size_t row = 0; row < batch.items.size(); ++row) {
      const size_t r = batch.items[row].request_index;
      if (sharded) {
        shard::BranchSet& set = branch_sets[r];
        if (set.embeddings.empty() ||
            set.embeddings.back().a.impl() != embedding.a.impl()) {
          set.embeddings.push_back(embedding);
        }
        set.rows.emplace_back(set.embeddings.size() - 1,
                              static_cast<int64_t>(row));
        continue;
      }
      const bool traced = live[r]->trace.active();
      const int64_t score_start = traced ? obs::NowNs() : 0;
      model_->DistancesToAll(embedding, static_cast<int64_t>(row), &dist);
      if (best[r].empty()) {
        best[r] = dist;
      } else {
        for (size_t i = 0; i < dist.size(); ++i) {
          best[r][i] = std::min(best[r][i], dist[i]);
        }
      }
      if (traced) {
        obs::RecordSpan(live[r]->trace, "score", score_start, obs::NowNs(),
                        {{"entities", static_cast<double>(dist.size())}});
      }
    }
  }

  for (size_t r = 0; r < live.size(); ++r) {
    FinishRanked(live[r].get(), &best[r],
                 sharded ? &branch_sets[r] : nullptr);
  }
}

void QueryServer::ServeChunkPlanned(
    std::vector<std::unique_ptr<PendingRequest>>* live_ptr,
    const std::vector<std::vector<query::QueryGraph>>& branches,
    bool any_traced) {
  std::vector<std::unique_ptr<PendingRequest>>& live = *live_ptr;
  plan_requests_->Increment(static_cast<int64_t>(live.size()));

  std::vector<plan::PlanItem> items;
  for (size_t r = 0; r < live.size(); ++r) {
    for (const query::QueryGraph& branch : branches[r]) {
      items.push_back({r, &branch});
    }
  }

  // Plan construction is one pass shared by the whole chunk; each traced
  // request records the shared interval as its own plan_build phase.
  const Clock::time_point build_start = Clock::now();
  const int64_t build_start_ns = any_traced ? obs::NowNs() : 0;
  const plan::Plan plan = planner_->BuildPlan(items);
  plan_build_us_->Observe(MicrosSince(build_start));
  if (any_traced) {
    const int64_t build_end_ns = obs::NowNs();
    for (const std::unique_ptr<PendingRequest>& request : live) {
      obs::RecordSpan(
          request->trace, "plan_build", build_start_ns, build_end_ns,
          {{"nodes", static_cast<double>(plan.nodes.size())},
           {"dedup_ratio", plan.dedup_ratio()}});
    }
  }
  plan_nodes_->Increment(plan.total_nodes);
  plan_unique_nodes_->Increment(static_cast<int64_t>(plan.nodes.size()));

  // Span ids for the shared batch_assembly / embed phases are allocated up
  // front on the first traced request so the executor's subtree_cache_hit
  // events and node_eval spans nest under them; the spans themselves are
  // recorded once their intervals close. Other traced requests in the
  // chunk record the same intervals without the children.
  size_t lead = live.size();  // first traced request, if any
  for (size_t r = 0; r < live.size(); ++r) {
    if (live[r]->trace.active()) {
      lead = r;
      break;
    }
  }
  obs::TraceContext assembly_ctx;
  uint32_t assembly_span = 0;
  obs::TraceContext embed_ctx;
  uint32_t embed_span = 0;
  if (lead < live.size()) {
    const obs::TraceContext& trace = live[lead]->trace;
    assembly_span = trace.tracer->NextSpanId();
    assembly_ctx = {trace.tracer, trace.trace_id, assembly_span};
    embed_span = trace.tracer->NextSpanId();
    embed_ctx = {trace.tracer, trace.trace_id, embed_span};
  }

  // Batch assembly on the planner path is Prepare: the top-down subtree
  // cache probe plus grouping of still-needed nodes into batched operator
  // calls.
  const bool analytics = query_stats_ != nullptr && options_.analytics;
  const int64_t sample_period =
      std::max<int64_t>(1, options_.analyze_sample_period);
  const bool collect_actuals =
      analytics && analyze_chunk_counter_.fetch_add(1) %
                           static_cast<uint64_t>(sample_period) ==
                       0;
  plan::ExecOptions exec_options;
  exec_options.collect_actuals = collect_actuals;
  exec_options.sample_entities = options_.analyze_sample_entities;
  const int64_t assembly_start_ns = any_traced ? obs::NowNs() : 0;
  plan::ExecSchedule schedule =
      plan_executor_->Prepare(plan, assembly_ctx, exec_options);
  if (any_traced) {
    const int64_t assembly_end_ns = obs::NowNs();
    for (size_t r = 0; r < live.size(); ++r) {
      obs::RecordSpan(
          live[r]->trace, "batch_assembly", assembly_start_ns,
          assembly_end_ns,
          {{"batches", static_cast<double>(schedule.batches.size())},
           {"chunk_requests", static_cast<double>(live.size())},
           {"subtree_cache_hits",
            static_cast<double>(schedule.stats.cache_hits)}},
          r == lead ? assembly_span : 0);
    }
  }
  plan_cache_hits_->Increment(schedule.stats.cache_hits);
  plan_cache_misses_->Increment(schedule.stats.cache_misses);
  plan_op_batches_->Increment(schedule.stats.op_batches);
  for (const plan::ExecSchedule::OpBatch& batch : schedule.batches) {
    batch_size_->Observe(static_cast<double>(batch.node_ids.size()));
  }

  // One executor pass materializes every unique subtree of the chunk; the
  // result has one embedding row per DNF branch root.
  const Clock::time_point exec_start = Clock::now();
  const int64_t embed_start_ns = any_traced ? obs::NowNs() : 0;
  const core::EmbeddingBatch embedding =
      plan_executor_->Run(plan, &schedule, embed_ctx);
  plan_exec_us_->Observe(MicrosSince(exec_start));
  plan_node_evals_->Increment(schedule.stats.evaluated);
  if (subtree_cache_ != nullptr) {
    plan_cache_bytes_->Set(static_cast<double>(subtree_cache_->bytes()));
  }
  if (any_traced) {
    const int64_t embed_end_ns = obs::NowNs();
    for (size_t r = 0; r < live.size(); ++r) {
      obs::RecordSpan(
          live[r]->trace, "embed", embed_start_ns, embed_end_ns,
          {{"rows", static_cast<double>(plan.roots.size())},
           {"node_evals", static_cast<double>(schedule.stats.evaluated)}},
          r == lead ? embed_span : 0);
    }
  }

  // Analytics plane: per-node metric families, the feedback EWMAs, and
  // per-request attribution stashed for Finish to fold into the store.
  // Plan-shape attribution covers every analytics chunk; the parts that
  // need per-node actuals only exist on the sampled chunks.
  if (analytics) {
    const std::vector<plan::NodeActuals>& actuals = schedule.stats.actuals;
    const bool measured = !actuals.empty();
    for (size_t id = 0; measured && id < plan.nodes.size(); ++id) {
      const plan::NodeActuals& a = actuals[id];
      const plan::PlanNode& node = plan.nodes[id];
      if (a.actual_rows >= 0.0) {
        plan_qerror_->Observe(plan::QError(node.est_rows, a.actual_rows));
        query_stats_->RecordSubtreeRows(node.key, a.actual_rows);
      }
      if (a.evaluated) {
        plan_node_us_[static_cast<size_t>(node.op)]->Observe(
            static_cast<double>(a.wall_ns) / 1e3);
      }
    }
    // Per-request attribution over each request's reachable sub-DAG; a
    // node shared across requests counts fully for every one of them
    // (attribution answers "what did serving this query involve", not
    // "who pays", so shares are not split).
    std::vector<int32_t> stack;
    std::vector<uint8_t> visited(plan.nodes.size());
    for (size_t r = 0; r < live.size(); ++r) {
      std::fill(visited.begin(), visited.end(), 0);
      stack.clear();
      for (const plan::PlanRoot& root : plan.roots) {
        if (root.request_index == r) stack.push_back(root.node);
      }
      PendingRequest* request = live[r].get();
      request->structure =
          query::StructureFingerprint(request->graph).ToHex();
      request->plan_dedup = plan.dedup_ratio();
      while (!stack.empty()) {
        const int32_t id = stack.back();
        stack.pop_back();
        if (visited[static_cast<size_t>(id)]) continue;
        visited[static_cast<size_t>(id)] = 1;
        ++request->plan_node_count;
        const plan::PlanNode& node = plan.node(id);
        if (measured) {
          const plan::NodeActuals& a = actuals[static_cast<size_t>(id)];
          if (a.evaluated) {
            request->op_ns[static_cast<size_t>(node.op)] += a.wall_ns;
          }
          if (a.actual_rows >= 0.0) {
            request->worst_qerror = std::max(
                request->worst_qerror,
                plan::QError(node.est_rows, a.actual_rows));
          }
        }
        for (uint32_t j = 0; j < node.num_inputs; ++j) {
          stack.push_back(node.inputs[j]);
        }
      }
    }
  }

  // DNF union semantics, exactly as the legacy path: per request, the
  // elementwise minimum over its branch roots (unsharded) or the branch
  // set handed to the scatter-gather coordinator (sharded).
  const bool sharded = coordinator_ != nullptr;
  std::vector<std::vector<float>> best(live.size());
  std::vector<shard::BranchSet> branch_sets(sharded ? live.size() : 0);
  std::vector<float> dist;
  for (size_t j = 0; j < plan.roots.size(); ++j) {
    const size_t r = plan.roots[j].request_index;
    if (sharded) {
      shard::BranchSet& set = branch_sets[r];
      if (set.embeddings.empty()) set.embeddings.push_back(embedding);
      set.rows.emplace_back(0, static_cast<int64_t>(j));
      continue;
    }
    const bool traced = live[r]->trace.active();
    const int64_t score_start = traced ? obs::NowNs() : 0;
    model_->DistancesToAll(embedding, static_cast<int64_t>(j), &dist);
    if (best[r].empty()) {
      best[r] = dist;
    } else {
      for (size_t i = 0; i < dist.size(); ++i) {
        best[r][i] = std::min(best[r][i], dist[i]);
      }
    }
    if (traced) {
      obs::RecordSpan(live[r]->trace, "score", score_start, obs::NowNs(),
                      {{"entities", static_cast<double>(dist.size())}});
    }
  }

  for (size_t r = 0; r < live.size(); ++r) {
    FinishRanked(live[r].get(), &best[r],
                 sharded ? &branch_sets[r] : nullptr);
  }
}

void QueryServer::FinishRanked(PendingRequest* request,
                               std::vector<float>* best,
                               shard::BranchSet* branch_set) {
  TopKAnswer answer;
  if (branch_set != nullptr) {
    shard::ShardedTopK top = coordinator_->TopKEmbedded(
        *branch_set, request->k, request->deadline, request->trace);
    if (!top.ok() && !top.partial()) {
      Finish(request, top.status);
      return;
    }
    FillAnswer(top.entries, &answer);
    answer.coverage = top.coverage;
    answer.completeness = top.status;
  } else {
    obs::SpanGuard rank(request->trace, "rank");
    FillAnswer(core::TopKFromDistances(*best, request->k), &answer);
    rank.End();
  }
  // Degraded answers are never cached: the outage must not outlive the
  // replicas that caused it.
  if (options_.enable_cache && answer.coverage == 1.0) {
    CachedAnswer entry{answer.entities, answer.distances};
    cache_.Put(request->key, std::move(entry));
  }
  Finish(request, std::move(answer));
}

Result<std::string> QueryServer::Explain(
    const query::QueryGraph& query) const {
  if (planner_ == nullptr) {
    return Status::Unavailable(
        options_.use_planner
            ? "planner unavailable: model does not expose OperatorModel"
            : "planner path is disabled (ServerOptions::use_planner)");
  }
  HALK_RETURN_NOT_OK(ValidateQuery(query, /*k=*/1));
  const std::vector<query::QueryGraph> branches = query::ToDnf(query);
  std::vector<plan::PlanItem> items;
  items.reserve(branches.size());
  for (const query::QueryGraph& branch : branches) {
    items.push_back({0, &branch});
  }
  const plan::Plan plan = planner_->BuildPlan(items);
  plan::ExplainOptions opt;
  opt.cache = subtree_cache_.get();
  opt.num_entities = model_->config().num_entities;
  if (kg_ != nullptr) {
    const kg::KnowledgeGraph* kg = kg_;
    opt.entity_name = [kg](int64_t id) { return kg->entities().Name(id); };
    opt.relation_name = [kg](int64_t id) {
      return kg->relations().Name(id);
    };
  }
  return plan::ExplainPlan(plan, opt);
}

Result<std::string> QueryServer::ExplainAnalyze(
    const query::QueryGraph& query) {
  if (planner_ == nullptr) {
    return Status::Unavailable(
        options_.use_planner
            ? "planner unavailable: model does not expose OperatorModel"
            : "planner path is disabled (ServerOptions::use_planner)");
  }
  HALK_RETURN_NOT_OK(ValidateQuery(query, /*k=*/1));
  const std::vector<query::QueryGraph> branches = query::ToDnf(query);
  std::vector<plan::PlanItem> items;
  items.reserve(branches.size());
  for (const query::QueryGraph& branch : branches) {
    items.push_back({0, &branch});
  }
  const plan::Plan plan = planner_->BuildPlan(items);

  // A diagnostic run favors estimate accuracy over probe cost: sample a
  // larger slice of the table than the serving default, capped so huge
  // KGs stay interactive.
  plan::ExecOptions exec_options;
  exec_options.collect_actuals = true;
  exec_options.sample_entities =
      std::min<int64_t>(model_->config().num_entities, 4096);
  plan::ExecSchedule schedule =
      plan_executor_->Prepare(plan, /*trace=*/{}, exec_options);
  (void)plan_executor_->Run(plan, &schedule);

  plan::ExplainOptions opt;
  opt.cache = subtree_cache_.get();
  opt.num_entities = model_->config().num_entities;
  if (kg_ != nullptr) {
    const kg::KnowledgeGraph* kg = kg_;
    opt.entity_name = [kg](int64_t id) { return kg->entities().Name(id); };
    opt.relation_name = [kg](int64_t id) {
      return kg->relations().Name(id);
    };
  }
  return plan::ExplainAnalyze(plan, schedule.stats, opt);
}

std::string QueryServer::DumpMetrics() const {
  std::ostringstream out;
  out << metrics_.DumpText();
  const int64_t hits = cache_hits_->value();
  const int64_t misses = cache_misses_->value();
  const int64_t lookups = hits + misses;
  out << "derived serving.cache_hit_rate "
      << (lookups == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(lookups))
      << "\n";
  const int64_t plan_total = plan_nodes_->value();
  const int64_t plan_unique = plan_unique_nodes_->value();
  out << "derived plan.dedup_ratio "
      << (plan_total == 0 ? 0.0
                          : 1.0 - static_cast<double>(plan_unique) /
                                      static_cast<double>(plan_total))
      << "\n";
  const int64_t subtree_hits = plan_cache_hits_->value();
  const int64_t subtree_lookups = subtree_hits + plan_cache_misses_->value();
  out << "derived plan.subtree_cache_hit_rate "
      << (subtree_lookups == 0 ? 0.0
                               : static_cast<double>(subtree_hits) /
                                     static_cast<double>(subtree_lookups))
      << "\n";
  return out.str();
}

}  // namespace halk::serving
