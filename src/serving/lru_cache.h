#ifndef HALK_SERVING_LRU_CACHE_H_
#define HALK_SERVING_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace halk::serving {

/// Thread-safe LRU map with a fixed entry capacity. One mutex guards the
/// recency list and the index — at serving batch sizes the critical
/// section (a splice and a hash lookup) is far cheaper than the embedding
/// work it shields, so a sharded design would be premature.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Copies the value into `*out` and marks the entry most-recently-used.
  bool Get(const K& key, V* out) HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    if (out != nullptr) *out = it->second->second;
    return true;
  }

  /// Inserts or overwrites, evicting the least-recently-used entry when
  /// over capacity. A zero-capacity cache stays empty.
  void Put(const K& key, V value) HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  void Clear() HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    order_.clear();
    index_.clear();
  }

  size_t size() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return index_.size();
  }
  size_t capacity() const { return capacity_; }

  int64_t hits() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return hits_;
  }
  int64_t misses() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return misses_;
  }
  int64_t evictions() const HALK_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return evictions_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  /// front = most recently used
  std::list<std::pair<K, V>> order_ HALK_GUARDED_BY(mu_);
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_ HALK_GUARDED_BY(mu_);
  int64_t hits_ HALK_GUARDED_BY(mu_) = 0;
  int64_t misses_ HALK_GUARDED_BY(mu_) = 0;
  int64_t evictions_ HALK_GUARDED_BY(mu_) = 0;
};

}  // namespace halk::serving

#endif  // HALK_SERVING_LRU_CACHE_H_
