#ifndef HALK_SERVING_BATCHER_H_
#define HALK_SERVING_BATCHER_H_

#include <cstddef>
#include <vector>

#include "query/dag.h"

namespace halk::serving {

/// One union-free conjunctive branch awaiting embedding, tagged with the
/// request it came from so branch distances can be min-reduced per request
/// after scoring.
struct BatchItem {
  size_t request_index = 0;          // caller-defined request slot
  const query::QueryGraph* graph = nullptr;  // union-free grounded branch
};

/// A group of branches safe to embed in one EmbedQueries call: all share
/// the same node layout (see StructureFingerprint), which is the model's
/// same-structure precondition.
struct MicroBatch {
  std::vector<BatchItem> items;
};

/// Groups items by structure layout and splits each group into batches of
/// at most `max_batch_size`. Within a group the input order is preserved,
/// and group order follows first appearance, so batching is deterministic
/// for a given item sequence.
std::vector<MicroBatch> FormBatches(const std::vector<BatchItem>& items,
                                    size_t max_batch_size);

}  // namespace halk::serving

#endif  // HALK_SERVING_BATCHER_H_
