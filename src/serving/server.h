#ifndef HALK_SERVING_SERVER_H_
#define HALK_SERVING_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/query_model.h"
#include "kg/graph.h"
#include "obs/journal.h"
#include "obs/query_stats.h"
#include "obs/slo_tracker.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "query/dag.h"
#include "query/fingerprint.h"
#include "serving/lru_cache.h"
#include "serving/metrics.h"
#include "serving/request_queue.h"
#include "serving/subtree_cache.h"
#include "shard/coordinator.h"
#include "shard/fault_injector.h"

namespace halk::serving {

/// Tuning knobs of the serving engine. The defaults favor throughput on a
/// trained mid-size model; tests shrink them to force edge cases.
struct ServerOptions {
  /// Worker threads draining the request queue.
  int num_workers = 4;
  /// Admission-queue capacity; Submit rejects (kUnavailable) beyond it.
  size_t queue_capacity = 1024;
  /// Upper bound on queries per EmbedQueries call.
  size_t max_batch_size = 16;
  /// How long a worker lingers for stragglers when its batch is not full.
  std::chrono::microseconds batch_linger{100};
  /// Entry capacity of the answer cache; 0 disables caching outright.
  size_t cache_capacity = 4096;
  bool enable_cache = true;
  /// Entity-table shards ranked in parallel per request; 0 keeps ranking
  /// on the serving worker thread (unsharded brute force).
  int num_shards = 0;
  /// Replicas per shard when sharding is on (availability, not speed).
  int shard_replication = 1;
  /// Pin shard worker threads to CPUs (ShardOptions::pin_threads).
  bool shard_pin_threads = false;
  /// Test hook: injects replica faults into the sharded ranking path.
  /// Must outlive the server; ignored when num_shards is 0.
  shard::ShardFaultInjector* shard_faults = nullptr;
  /// Optional request tracer (must outlive the server). While its enabled
  /// flag is set, every submitted request records a span tree — queue
  /// wait, cache lookup, DNF expansion, batching, embedding, per-shard
  /// scatter/scan, merge — retrievable via tracer->Collect(trace_id) with
  /// the id returned in TopKAnswer::trace_id. Null or disabled costs one
  /// relaxed atomic load per request.
  obs::Tracer* tracer = nullptr;
  /// Rolling-window SLO tracker fed with every finished request's latency
  /// and outcome (must outlive the server; null disables). Burn rates are
  /// exported when the tracker registered its metrics — typically into
  /// this server's registry via slo->RegisterMetrics(server.metrics()).
  obs::SloTracker* slo = nullptr;
  /// Per-request JSONL audit journal (fingerprint, status, latency,
  /// coverage, cache hit, trace id); must outlive the server. Null
  /// disables — the journal write is a mutex-serialized flushed append,
  /// so enable it for auditing, not for peak throughput.
  obs::ServeJournal* serve_journal = nullptr;
  /// Requests slower than this land in the slow-query log (zero disables
  /// the log; it only retains traces, so it also requires `tracer`).
  std::chrono::microseconds slow_query_threshold{0};
  /// Distinct query fingerprints retained by the slow-query log.
  size_t slow_query_log_capacity = 32;
  /// Route micro-batches through the cost-based planner and shared-graph
  /// executor (src/plan/): one deduplicated compute DAG per chunk instead
  /// of per-layout EmbedQueries batches. Answers stay bit-identical to
  /// Evaluator::TopK. Silently falls back to the legacy path when the
  /// model does not expose OperatorModel (plan.fallback counts it).
  bool use_planner = true;
  /// Byte budget of the subtree (intermediate-result) cache; 0 disables
  /// it. Only used on the planner path.
  size_t subtree_cache_bytes = 8u << 20;
  /// Apply the algebraic rewrite pass (plan/rewrite.h) before planning.
  /// Off by default: rewrites preserve answer *sets* but swap which
  /// neural operators run, breaking bit-identity with Evaluator::TopK.
  bool planner_rewrites = false;
  /// Query analytics plane: collect per-node actuals on sampled planned
  /// chunks (attributed wall, sampled actual rows, cache / slot-reuse
  /// flags), feed the fingerprint-keyed query-statistics store behind
  /// /queryz, and export the plan.qerror / plan.node_us metric families.
  /// Request-level aggregation (hits, latency, plan shape) covers every
  /// request; the per-node membership probes run on one planned chunk in
  /// analyze_sample_period, so the amortized cost stays within the
  /// bench-smoke CI gate (analytics-on throughput within 5% of off).
  bool analytics = true;
  /// Entities probed per plan node for the sampled actual-rows estimate.
  int64_t analyze_sample_entities = 256;
  /// Collect per-node actuals on one planned chunk in this many (the
  /// first chunk is always sampled; values < 1 behave as 1 = every
  /// chunk). Probing every chunk costs O(nodes * analyze_sample_entities)
  /// distance evaluations per chunk — measurably slower than serving
  /// itself on cheap queries — while the q-error and feedback aggregates
  /// converge fine from samples.
  int64_t analyze_sample_period = 16;
  /// Distinct canonical fingerprints the query-statistics store retains
  /// (LRU beyond it); 0 disables the store — and with it /queryz feeding,
  /// q-error aggregation, and cardinality feedback.
  size_t query_stats_capacity = 512;
  /// Cardinality feedback: let the planner override cost-model estimates
  /// with the store's observed subtree cardinalities when ordering each
  /// depth level. Ordering is all that changes — operator math never
  /// reads the scheduling key, so served rankings stay bit-identical to
  /// Evaluator::TopK (the equivalence suite proves it with this on).
  /// Default off; requires analytics to have something to feed it.
  bool use_feedback = false;
  /// Observations of a subtree required before feedback trusts its EWMA.
  int64_t feedback_min_samples = 2;
};

/// A served top-k answer: entity ids in ascending model distance.
struct TopKAnswer {
  std::vector<int64_t> entities;
  std::vector<float> distances;
  bool from_cache = false;
  /// Fraction of the entity table scored. Below 1 only under sharded
  /// serving when every replica of some shard was lost; the entities are
  /// still the exact top-k of the covered fraction.
  double coverage = 1.0;
  /// OK, or kPartialResult when coverage < 1 (degraded-mode serving).
  Status completeness;
  /// Id of the request's trace when the server's tracer captured one
  /// (pass to Tracer::Collect); 0 when tracing was off for this request.
  uint64_t trace_id = 0;
};

/// Concurrent query-serving engine over a trained QueryModel (Sec. IV's
/// evaluation path, productionized): any thread submits grounded query
/// graphs; a bounded MPMC queue applies admission control; worker threads
/// coalesce pending requests into micro-batches per structure layout and
/// answer them with one EmbedQueries call each; canonical-fingerprint
/// LRU caching short-circuits repeated queries; counters and latency
/// histograms are exported through a MetricsRegistry.
///
/// Union queries are DNF-expanded (exactly as Evaluator does) and their
/// branches batch independently — a branch of one request can share a
/// micro-batch with branches of other requests.
class QueryServer {
 public:
  /// `model` must stay alive for the server's lifetime and is shared with
  /// the workers — inference paths (EmbedQueries / DistancesToAll) only
  /// read parameters, so no external synchronization is needed as long as
  /// nobody trains the model while it serves. `kg` (optional, may be null)
  /// adds grounding validation against the graph's vocabulary.
  QueryServer(core::QueryModel* model, const kg::KnowledgeGraph* kg,
              const ServerOptions& options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Submits one query for asynchronous answering. Fails fast with
  /// kUnavailable when the queue is full (admission control) and
  /// kInvalidArgument for malformed/unsupported queries; cache hits
  /// resolve before returning. `timeout` zero means no deadline; a request
  /// still queued when its deadline passes resolves to kDeadlineExceeded.
  [[nodiscard]] Result<std::future<Result<TopKAnswer>>> Submit(
      const query::QueryGraph& query, int64_t k,
      std::chrono::microseconds timeout = std::chrono::microseconds::zero());

  /// Synchronous convenience wrapper around Submit.
  [[nodiscard]] Result<TopKAnswer> Answer(
      const query::QueryGraph& query, int64_t k,
      std::chrono::microseconds timeout = std::chrono::microseconds::zero());

  /// Stops admission, drains queued requests, and joins the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  MetricsRegistry* metrics() { return &metrics_; }
  /// Plain-text metrics dump plus derived cache hit rate, planner dedup
  /// ratio, and subtree-cache hit rate.
  std::string DumpMetrics() const;

  /// Renders the plan the server would run for `query` — node order,
  /// estimated selectivities, dedup and subtree-cache annotations —
  /// without executing it (the sparql_endpoint `.explain` command).
  /// kUnavailable when the planner path is off or unsupported by the
  /// model; kInvalidArgument for malformed queries.
  [[nodiscard]] Result<std::string> Explain(
      const query::QueryGraph& query) const;

  /// EXPLAIN ANALYZE: plans `query` solo, executes it with per-node
  /// actuals collection, and renders estimated vs. sampled-actual rows,
  /// per-node q-error, attributed wall time, and cache annotations (the
  /// sparql_endpoint `.analyze` command). Unlike Explain this *runs* the
  /// plan — it warms the subtree cache exactly as serving would, but
  /// bypasses the queue, the answer cache, and ranking. Same availability
  /// errors as Explain.
  [[nodiscard]] Result<std::string> ExplainAnalyze(
      const query::QueryGraph& query);

  /// The intermediate-result cache, or null when the planner path is off
  /// or subtree_cache_bytes is 0. Invalidation hooks live here:
  /// InvalidateRelation / Clear after KG or parameter updates.
  SubtreeCache* subtree_cache() { return subtree_cache_.get(); }

  /// The fingerprint-keyed query-statistics store (the /queryz source and
  /// feedback seam), or null when query_stats_capacity was 0 or both
  /// analytics and use_feedback were off.
  obs::QueryStatsStore* query_stats() { return query_stats_.get(); }

  /// The tracer from ServerOptions, or null.
  obs::Tracer* tracer() { return options_.tracer; }
  /// The slow-query log, or null when slow_query_threshold was zero or no
  /// tracer was configured.
  obs::SlowQueryLog* slow_query_log() { return slow_log_.get(); }

  const ServerOptions& options() const { return options_; }

  /// The sharded execution engine, or null when num_shards is 0.
  shard::ShardCoordinator* coordinator() { return coordinator_.get(); }

 private:
  struct CachedAnswer {
    std::vector<int64_t> entities;
    std::vector<float> distances;
  };

  struct PendingRequest {
    query::QueryGraph graph;
    int64_t k = 0;
    query::Fingerprint key;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    bool has_deadline = false;
    /// Trace handle parented at the request's root span; inactive when
    /// tracing is off. `root_span` is pre-allocated at Submit so children
    /// can reference it before the root is recorded at Finish.
    obs::TraceContext trace;
    uint32_t root_span = 0;
    int64_t submit_ns = 0;
    /// Analytics stashed by ServeChunkPlanned for Finish to fold into the
    /// query-stats store, the slow-query log, and the serve journal:
    /// structure fingerprint, reachable plan nodes, the chunk plan's dedup
    /// ratio, worst node q-error, and per-operator attributed wall.
    std::string structure;
    int64_t plan_node_count = 0;
    double plan_dedup = 0.0;
    double worst_qerror = 0.0;
    std::array<int64_t, obs::kNumOpKinds> op_ns{};
    std::promise<Result<TopKAnswer>> promise;
  };

  void WorkerLoop();
  void ServeChunk(std::vector<std::unique_ptr<PendingRequest>>* chunk);
  /// Planner path: one deduplicated compute DAG for the whole chunk, one
  /// embedding row per DNF branch root. `branches[r]` are request r's
  /// DNF branches; both vectors are indexed by position in `live`.
  void ServeChunkPlanned(
      std::vector<std::unique_ptr<PendingRequest>>* live,
      const std::vector<std::vector<query::QueryGraph>>& branches,
      bool any_traced);
  /// Legacy path: per-layout EmbedQueries micro-batches (serving/batcher).
  void ServeChunkLegacy(
      std::vector<std::unique_ptr<PendingRequest>>* live,
      const std::vector<std::vector<query::QueryGraph>>& branches,
      bool any_traced);
  /// Shared tail of both paths: rank request r from its accumulated
  /// per-entity minimum distances (unsharded) or branch set (sharded),
  /// fill the answer cache, and resolve the promise.
  void FinishRanked(PendingRequest* request, std::vector<float>* best,
                    shard::BranchSet* branch_set);
  [[nodiscard]] Status ValidateQuery(const query::QueryGraph& query, int64_t k) const;
  void Finish(PendingRequest* request, Result<TopKAnswer> result);

  core::QueryModel* model_;
  const kg::KnowledgeGraph* kg_;  // may be null
  ServerOptions options_;

  BoundedQueue<std::unique_ptr<PendingRequest>> queue_;
  LruCache<query::Fingerprint, CachedAnswer, query::FingerprintHash> cache_;
  MetricsRegistry metrics_;
  std::unique_ptr<shard::ShardCoordinator> coordinator_;  // null = unsharded
  std::unique_ptr<obs::SlowQueryLog> slow_log_;           // null = disabled

  // Planner path (null when use_planner is off or the model does not
  // implement OperatorModel). The executor's OperatorModel pointer aliases
  // model_; the subtree cache is internally synchronized.
  std::unique_ptr<plan::Planner> planner_;
  std::unique_ptr<plan::PlanExecutor> plan_executor_;
  std::unique_ptr<SubtreeCache> subtree_cache_;
  std::unique_ptr<obs::QueryStatsStore> query_stats_;  // null = disabled

  // Hot-path instrument pointers (stable for the registry's lifetime).
  Counter* submitted_;
  Counter* rejected_;
  Counter* invalid_;
  Counter* completed_;
  Counter* expired_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Histogram* latency_us_;
  Histogram* batch_size_;
  Gauge* queue_depth_;  // requests admitted, not yet picked up
  Gauge* in_flight_;    // requests admitted, not yet finished

  // Planner-path instruments (always registered; zero on the legacy path).
  Counter* plan_requests_;
  Counter* plan_fallback_;
  Counter* plan_nodes_;
  Counter* plan_unique_nodes_;
  Counter* plan_node_evals_;
  Counter* plan_cache_hits_;
  Counter* plan_cache_misses_;
  Counter* plan_op_batches_;
  Histogram* plan_build_us_;
  Histogram* plan_exec_us_;
  Gauge* plan_cache_bytes_;
  // Analytics-plane instruments: per-node q-error and one labeled
  // plan.node_us child per operator kind, pre-resolved so the hot path
  // never takes the registry lock.
  Histogram* plan_qerror_;
  std::array<Histogram*, obs::kNumOpKinds> plan_node_us_{};
  // Planned-chunk counter electing the 1-in-analyze_sample_period chunks
  // that pay for per-node membership probes. Starts at 0 so the very
  // first chunk is always measured.
  std::atomic<uint64_t> analyze_chunk_counter_{0};

  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace halk::serving

#endif  // HALK_SERVING_SERVER_H_

