#ifndef HALK_BASELINES_CONE_H_
#define HALK_BASELINES_CONE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/arc.h"
#include "core/query_model.h"
#include "nn/deepsets.h"
#include "nn/mlp.h"

namespace halk::baselines {

/// ConE baseline (Zhang et al., NeurIPS 2021), reimplemented on the shared
/// substrate: entities are angles, queries are cones (axis, aperture) —
/// geometrically equivalent to arcs in 2D. Compared with HaLk it exhibits
/// exactly the deficiencies the paper targets:
///   * projection learns the axis and the aperture *independently* (no
///     coordinated start/end-point pair) — the "semantic gap";
///   * intersection attention averages raw angle values (periodicity
///     unsafe), not rectangular coordinates;
///   * negation is the pure linear antipodal map (no non-linear correction);
///   * no difference operator (the '-' columns in Tables I-II).
class ConeModel : public core::QueryModel {
 public:
  ConeModel(const core::ModelConfig& config,
            const kg::NodeGrouping* grouping);

  std::string name() const override { return "ConE"; }

  core::EmbeddingBatch EmbedQueries(
      const std::vector<const query::QueryGraph*>& queries) override;

  tensor::Tensor Distance(const std::vector<int64_t>& entities,
                          const core::EmbeddingBatch& embedding) override;

  void DistancesToAll(const core::EmbeddingBatch& embedding, int64_t row,
                      std::vector<float>* out) const override;

  std::vector<tensor::Tensor> Parameters() const override;

  bool Supports(query::OpType op) const override {
    return op != query::OpType::kDifference;
  }

  // Operators (public for tests).
  core::ArcBatch EmbedAnchors(const std::vector<int64_t>& entities);
  core::ArcBatch Projection(const core::ArcBatch& input,
                            const std::vector<int64_t>& relations);
  core::ArcBatch Intersection(const std::vector<core::ArcBatch>& inputs);
  core::ArcBatch Negation(const core::ArcBatch& input);

 private:
  Rng rng_;
  tensor::Tensor entity_angles_;  // [N, d]
  tensor::Tensor rel_axis_;       // [M, d]
  tensor::Tensor rel_aperture_;   // [M, d]
  std::unique_ptr<nn::Mlp> proj_axis_;      // d -> d (axis only)
  std::unique_ptr<nn::Mlp> proj_aperture_;  // d -> d (aperture only)
  std::unique_ptr<nn::Mlp> inter_att_;
  std::unique_ptr<nn::DeepSets> inter_sets_;
};

}  // namespace halk::baselines

#endif  // HALK_BASELINES_CONE_H_
