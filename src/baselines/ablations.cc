#include "baselines/ablations.h"

#include "common/logging.h"
#include "nn/attention.h"

namespace halk::baselines {

using core::ArcBatch;
using tensor::Tensor;

namespace {
constexpr float kTwoPi = 6.283185307179586f;
}  // namespace

HalkV1Model::HalkV1Model(const core::ModelConfig& config,
                         const kg::NodeGrouping* grouping)
    : HalkModel(config, grouping) {
  v1_sets_ = std::make_unique<nn::DeepSets>(
      std::vector<int64_t>{2 * config.dim, config.hidden},
      std::vector<int64_t>{config.hidden, config.dim}, &rng_);
}

ArcBatch HalkV1Model::Difference(const std::vector<ArcBatch>& inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  // Centers: same attention machinery as HaLk.
  std::vector<Tensor> scores;
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor base = diff_att_->Forward(StartEndPair(inputs[i], config_.rho));
    const Tensor& kappa = (i == 0) ? kappa_first_ : kappa_rest_;
    scores.push_back(tensor::Mul(base, kappa));
  }
  Tensor center = SemanticAverageCenter(inputs, scores);

  // NewLook-style raw-value overlap features — periodicity-unaware — and
  // no cardinality constraint: the length is free in [0, 2πρ].
  std::vector<Tensor> features;
  for (size_t j = 1; j < inputs.size(); ++j) {
    features.push_back(tensor::Concat(
        {tensor::Sub(inputs[0].center, inputs[j].center),
         tensor::Sub(inputs[0].length, inputs[j].length)},
        1));
  }
  Tensor length = tensor::MulScalar(
      tensor::Sigmoid(v1_sets_->Forward(features)), kTwoPi * config_.rho);
  return {center, length};
}

std::vector<Tensor> HalkV1Model::Parameters() const {
  std::vector<Tensor> out = HalkModel::Parameters();
  for (const Tensor& p : v1_sets_->Parameters()) out.push_back(p);
  return out;
}

HalkV2Model::HalkV2Model(const core::ModelConfig& config,
                         const kg::NodeGrouping* grouping)
    : HalkModel(config, grouping) {}

ArcBatch HalkV2Model::Negation(const ArcBatch& input) {
  // Eq. (13) only — the linear transformation, no Eq. (14) correction.
  Tensor center = tensor::Mod2Pi(
      tensor::AddScalar(input.center, kTwoPi / 2.0f));
  Tensor length = tensor::AddScalar(tensor::Neg(input.length),
                                    kTwoPi * config_.rho);
  return {center, length};
}

HalkV3Model::HalkV3Model(const core::ModelConfig& config,
                         const kg::NodeGrouping* grouping)
    : HalkModel(config, grouping) {
  v3_center_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config.dim, config.hidden, config.dim}, &rng_);
  v3_length_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{config.dim, config.hidden, config.dim}, &rng_);
  // Zero-initialized residual heads (see HalkModel).
  v3_center_->ZeroInitFinalLayer();
  v3_length_->ZeroInitFinalLayer();
}

ArcBatch HalkV3Model::Projection(const ArcBatch& input,
                                 const std::vector<int64_t>& relations) {
  constexpr float kPi = 3.14159265358979f;
  Tensor r_center = tensor::Gather(rel_center_, relations);
  Tensor r_length = tensor::Gather(rel_length_, relations);
  Tensor approx_center = tensor::Add(input.center, r_center);
  Tensor approx_length = tensor::Add(input.length, r_length);
  // Center and length refined independently of each other — no start/end
  // coordination (same residual parameterization as the full model, minus
  // the coordinated pair).
  Tensor center = tensor::Mod2Pi(tensor::Add(
      approx_center,
      tensor::MulScalar(
          tensor::Tanh(tensor::MulScalar(v3_center_->Forward(approx_center),
                                         config_.lambda)),
          kPi)));
  Tensor length = tensor::Clamp(
      tensor::Add(approx_length,
                  tensor::MulScalar(
                      tensor::Tanh(v3_length_->Forward(approx_length)),
                      kPi / 4.0f)),
      0.0f, 2.0f * kPi * config_.rho);
  return {center, length};
}

std::vector<Tensor> HalkV3Model::Parameters() const {
  std::vector<Tensor> out = HalkModel::Parameters();
  for (const Tensor& p : v3_center_->Parameters()) out.push_back(p);
  for (const Tensor& p : v3_length_->Parameters()) out.push_back(p);
  return out;
}

}  // namespace halk::baselines
