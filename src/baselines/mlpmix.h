#ifndef HALK_BASELINES_MLPMIX_H_
#define HALK_BASELINES_MLPMIX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/query_model.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace halk::baselines {

/// MLPMix baseline (Amayuelas et al., ICLR 2022), reimplemented on the
/// shared substrate: a purely non-geometric model — entities and queries
/// are plain vectors, every operator is an MLP mix, negation is a single
/// linear map (the linear transformation assumption), and the L1 distance
/// has no cardinality component. The paper attributes its weakness on
/// logical queries to exactly this lack of answer-set geometry.
class MlpMixModel : public core::QueryModel {
 public:
  MlpMixModel(const core::ModelConfig& config,
              const kg::NodeGrouping* grouping);

  std::string name() const override { return "MLPMix"; }

  core::EmbeddingBatch EmbedQueries(
      const std::vector<const query::QueryGraph*>& queries) override;

  tensor::Tensor Distance(const std::vector<int64_t>& entities,
                          const core::EmbeddingBatch& embedding) override;

  void DistancesToAll(const core::EmbeddingBatch& embedding, int64_t row,
                      std::vector<float>* out) const override;

  std::vector<tensor::Tensor> Parameters() const override;

  bool Supports(query::OpType op) const override {
    return op != query::OpType::kDifference;
  }

  // Vector operators; EmbeddingBatch.a is the query vector, .b is unused
  // (zeros).
  tensor::Tensor EmbedAnchors(const std::vector<int64_t>& entities);
  tensor::Tensor Projection(const tensor::Tensor& input,
                            const std::vector<int64_t>& relations);
  tensor::Tensor Intersection(const std::vector<tensor::Tensor>& inputs);
  tensor::Tensor Negation(const tensor::Tensor& input);

 private:
  Rng rng_;
  tensor::Tensor entity_vecs_;  // [N, d]
  tensor::Tensor rel_vecs_;     // [M, d]
  std::unique_ptr<nn::Mlp> proj_;       // 2d -> d
  std::unique_ptr<nn::Mlp> inter_pre_;  // d -> d
  std::unique_ptr<nn::Mlp> inter_post_; // d -> d
  std::unique_ptr<nn::Linear> neg_;     // linear-only negation
};

}  // namespace halk::baselines

#endif  // HALK_BASELINES_MLPMIX_H_
