#include "baselines/factory.h"

#include "baselines/ablations.h"
#include "baselines/betae.h"
#include "baselines/cone.h"
#include "baselines/mlpmix.h"
#include "baselines/newlook.h"
#include "core/halk_model.h"

namespace halk::baselines {

std::vector<std::string> AvailableModels() {
  return {"halk",    "cone",    "newlook", "mlpmix",  "betae",
          "halk-v1", "halk-v2", "halk-v3"};
}

Result<std::unique_ptr<core::QueryModel>> CreateModel(
    const std::string& name, const core::ModelConfig& config,
    const kg::NodeGrouping* grouping) {
  std::unique_ptr<core::QueryModel> model;
  if (name == "halk") {
    model = std::make_unique<core::HalkModel>(config, grouping);
  } else if (name == "cone") {
    model = std::make_unique<ConeModel>(config, grouping);
  } else if (name == "newlook") {
    model = std::make_unique<NewLookModel>(config, grouping);
  } else if (name == "mlpmix") {
    model = std::make_unique<MlpMixModel>(config, grouping);
  } else if (name == "betae") {
    model = std::make_unique<BetaEModel>(config, grouping);
  } else if (name == "halk-v1") {
    model = std::make_unique<HalkV1Model>(config, grouping);
  } else if (name == "halk-v2") {
    model = std::make_unique<HalkV2Model>(config, grouping);
  } else if (name == "halk-v3") {
    model = std::make_unique<HalkV3Model>(config, grouping);
  } else {
    return Status::NotFound("unknown model: " + name);
  }
  return model;
}

}  // namespace halk::baselines
