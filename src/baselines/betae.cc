#include "baselines/betae.h"

#include <cmath>

#include "common/logging.h"
#include "nn/attention.h"
#include "nn/init.h"

namespace halk::baselines {

using core::EmbeddingBatch;
using tensor::Tensor;

BetaEModel::BetaEModel(const core::ModelConfig& config,
                       const kg::NodeGrouping* /*grouping*/)
    : QueryModel(config), rng_(config.seed) {
  const int64_t d = config.dim;
  const int64_t h = config.hidden;
  // Raw ~ softplus^-1(1): parameters start near Beta(1, 1) = uniform.
  entity_raw_ = Tensor::Zeros({config.num_entities, 2 * d});
  nn::UniformInit(&entity_raw_, 0.2f, 0.9f, &rng_);
  entity_raw_.set_requires_grad(true);
  rel_vecs_ = Tensor::Zeros({config.num_relations, d});
  nn::UniformInit(&rel_vecs_, -0.5f, 0.5f, &rng_);
  rel_vecs_.set_requires_grad(true);
  proj_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{3 * d, h, 2 * d},
                                    &rng_);
  inter_att_ =
      std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d}, &rng_);
}

Tensor BetaEModel::Positive(const Tensor& raw) const {
  return tensor::AddScalar(tensor::Softplus(raw), kMinParam);
}

EmbeddingBatch BetaEModel::EmbedAnchors(
    const std::vector<int64_t>& entities) {
  Tensor raw = tensor::Gather(entity_raw_, entities);
  Tensor alpha = Positive(tensor::SliceCols(raw, 0, config_.dim));
  Tensor beta = Positive(tensor::SliceCols(raw, config_.dim, 2 * config_.dim));
  return {alpha, beta};
}

EmbeddingBatch BetaEModel::Projection(const EmbeddingBatch& input,
                                      const std::vector<int64_t>& relations) {
  Tensor rel = tensor::Gather(rel_vecs_, relations);
  Tensor raw = proj_->Forward(tensor::Concat({input.a, input.b, rel}, 1));
  Tensor alpha = Positive(tensor::SliceCols(raw, 0, config_.dim));
  Tensor beta = Positive(tensor::SliceCols(raw, config_.dim, 2 * config_.dim));
  return {alpha, beta};
}

EmbeddingBatch BetaEModel::Intersection(
    const std::vector<EmbeddingBatch>& inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  std::vector<Tensor> scores;
  for (const EmbeddingBatch& in : inputs) {
    scores.push_back(inter_att_->Forward(tensor::Concat({in.a, in.b}, 1)));
  }
  std::vector<Tensor> weights = nn::SoftmaxAcross(scores);
  Tensor alpha;
  Tensor beta;
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor ta = tensor::Mul(weights[i], inputs[i].a);
    Tensor tb = tensor::Mul(weights[i], inputs[i].b);
    alpha = alpha.defined() ? tensor::Add(alpha, ta) : ta;
    beta = beta.defined() ? tensor::Add(beta, tb) : tb;
  }
  return {alpha, beta};
}

EmbeddingBatch BetaEModel::Negation(const EmbeddingBatch& input) {
  // The reciprocal map of the BetaE paper: 1/α, 1/β — turns density peaks
  // into troughs. Parameters stay positive by construction.
  Tensor one_a = tensor::Div(Tensor::Full({1}, 1.0f), input.a);
  Tensor one_b = tensor::Div(Tensor::Full({1}, 1.0f), input.b);
  return {one_a, one_b};
}

EmbeddingBatch BetaEModel::EmbedQueries(
    const std::vector<const query::QueryGraph*>& queries) {
  HALK_CHECK(!queries.empty());
  const query::QueryGraph& proto = *queries[0];
  std::vector<EmbeddingBatch> nodes(static_cast<size_t>(proto.num_nodes()));
  for (int id : proto.TopologicalOrder()) {
    const query::QueryNode& n = proto.nodes()[static_cast<size_t>(id)];
    switch (n.op) {
      case query::OpType::kAnchor: {
        std::vector<int64_t> entities;
        for (const query::QueryGraph* q : queries) {
          entities.push_back(q->nodes()[static_cast<size_t>(id)].anchor_entity);
        }
        nodes[static_cast<size_t>(id)] = EmbedAnchors(entities);
        break;
      }
      case query::OpType::kProjection: {
        std::vector<int64_t> relations;
        for (const query::QueryGraph* q : queries) {
          relations.push_back(q->nodes()[static_cast<size_t>(id)].relation);
        }
        nodes[static_cast<size_t>(id)] =
            Projection(nodes[static_cast<size_t>(n.inputs[0])], relations);
        break;
      }
      case query::OpType::kIntersection: {
        std::vector<EmbeddingBatch> inputs;
        for (int in : n.inputs) inputs.push_back(nodes[static_cast<size_t>(in)]);
        nodes[static_cast<size_t>(id)] = Intersection(inputs);
        break;
      }
      case query::OpType::kNegation:
        nodes[static_cast<size_t>(id)] =
            Negation(nodes[static_cast<size_t>(n.inputs[0])]);
        break;
      case query::OpType::kDifference:
        HALK_CHECK(false) << "BetaE does not support the difference operator";
        break;
      case query::OpType::kUnion:
        HALK_CHECK(false) << "union must be lifted out by ToDnf";
        break;
    }
  }
  return nodes[static_cast<size_t>(proto.target())];
}

Tensor BetaEModel::Distance(const std::vector<int64_t>& entities,
                            const EmbeddingBatch& embedding) {
  // Summed per-dimension KL(entity ‖ query):
  //   KL(B(a1,b1)‖B(a2,b2)) = lnB(a2,b2) − lnB(a1,b1)
  //     + (a1−a2)ψ(a1) + (b1−b2)ψ(b1) + (a2−a1+b2−b1)ψ(a1+b1).
  EmbeddingBatch e = EmbedAnchors(entities);
  Tensor a1 = e.a;
  Tensor b1 = e.b;
  const Tensor& a2 = embedding.a;
  const Tensor& b2 = embedding.b;
  auto log_beta = [](const Tensor& a, const Tensor& b) {
    return tensor::Sub(tensor::Add(tensor::Lgamma(a), tensor::Lgamma(b)),
                       tensor::Lgamma(tensor::Add(a, b)));
  };
  Tensor kl = tensor::Sub(log_beta(a2, b2), log_beta(a1, b1));
  kl = tensor::Add(kl, tensor::Mul(tensor::Sub(a1, a2), tensor::Digamma(a1)));
  kl = tensor::Add(kl, tensor::Mul(tensor::Sub(b1, b2), tensor::Digamma(b1)));
  Tensor cross = tensor::Add(tensor::Sub(a2, a1), tensor::Sub(b2, b1));
  kl = tensor::Add(kl,
                   tensor::Mul(cross, tensor::Digamma(tensor::Add(a1, b1))));
  return tensor::SumDim(kl, 1);
}

void BetaEModel::DistancesToAll(const EmbeddingBatch& embedding, int64_t row,
                                std::vector<float>* out) const {
  const int64_t d = config_.dim;
  const float* qa = embedding.a.data() + row * d;
  const float* qb = embedding.b.data() + row * d;
  const float* raw = entity_raw_.data();
  out->resize(static_cast<size_t>(config_.num_entities));
  auto softplus = [](float x) {
    const float m = x > 0.0f ? x : 0.0f;
    return m + std::log1p(std::exp(-std::fabs(x))) + kMinParam;
  };
  std::vector<float> log_beta_q(static_cast<size_t>(d));
  for (int64_t i = 0; i < d; ++i) {
    log_beta_q[static_cast<size_t>(i)] =
        std::lgamma(qa[i]) + std::lgamma(qb[i]) - std::lgamma(qa[i] + qb[i]);
  }
  for (int64_t e = 0; e < config_.num_entities; ++e) {
    const float* r = raw + e * 2 * d;
    float total = 0.0f;
    for (int64_t i = 0; i < d; ++i) {
      const float a1 = softplus(r[i]);
      const float b1 = softplus(r[d + i]);
      const float log_beta_e =
          std::lgamma(a1) + std::lgamma(b1) - std::lgamma(a1 + b1);
      total += log_beta_q[static_cast<size_t>(i)] - log_beta_e +
               (a1 - qa[i]) * tensor::special::DigammaScalar(a1) +
               (b1 - qb[i]) * tensor::special::DigammaScalar(b1) +
               (qa[i] - a1 + qb[i] - b1) *
                   tensor::special::DigammaScalar(a1 + b1);
    }
    (*out)[static_cast<size_t>(e)] = total;
  }
}

std::vector<Tensor> BetaEModel::Parameters() const {
  std::vector<Tensor> out = {entity_raw_, rel_vecs_};
  for (const Tensor& p : proj_->Parameters()) out.push_back(p);
  for (const Tensor& p : inter_att_->Parameters()) out.push_back(p);
  return out;
}

}  // namespace halk::baselines
