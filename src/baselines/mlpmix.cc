#include "baselines/mlpmix.h"

#include <cmath>

#include "common/logging.h"
#include "nn/init.h"

namespace halk::baselines {

using core::EmbeddingBatch;
using tensor::Tensor;

MlpMixModel::MlpMixModel(const core::ModelConfig& config,
                         const kg::NodeGrouping* /*grouping*/)
    : QueryModel(config), rng_(config.seed) {
  const int64_t d = config.dim;
  const int64_t h = config.hidden;
  entity_vecs_ = Tensor::Zeros({config.num_entities, d});
  nn::UniformInit(&entity_vecs_, -1.0f, 1.0f, &rng_);
  entity_vecs_.set_requires_grad(true);
  rel_vecs_ = Tensor::Zeros({config.num_relations, d});
  nn::UniformInit(&rel_vecs_, -1.0f, 1.0f, &rng_);
  rel_vecs_.set_requires_grad(true);
  proj_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d}, &rng_);
  inter_pre_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{d, h}, &rng_);
  inter_post_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{h, d}, &rng_);
  neg_ = std::make_unique<nn::Linear>(d, d, &rng_);
}

Tensor MlpMixModel::EmbedAnchors(const std::vector<int64_t>& entities) {
  return tensor::Gather(entity_vecs_, entities);
}

Tensor MlpMixModel::Projection(const Tensor& input,
                               const std::vector<int64_t>& relations) {
  Tensor rel = tensor::Gather(rel_vecs_, relations);
  return proj_->Forward(tensor::Concat({input, rel}, 1));
}

Tensor MlpMixModel::Intersection(const std::vector<Tensor>& inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  Tensor acc;
  for (const Tensor& in : inputs) {
    Tensor h = inter_pre_->Forward(in);
    acc = acc.defined() ? tensor::Add(acc, h) : h;
  }
  acc = tensor::MulScalar(acc, 1.0f / static_cast<float>(inputs.size()));
  return inter_post_->Forward(acc);
}

Tensor MlpMixModel::Negation(const Tensor& input) {
  // The linear transformation assumption, verbatim.
  return neg_->Forward(input);
}

EmbeddingBatch MlpMixModel::EmbedQueries(
    const std::vector<const query::QueryGraph*>& queries) {
  HALK_CHECK(!queries.empty());
  const query::QueryGraph& proto = *queries[0];
  std::vector<Tensor> nodes(static_cast<size_t>(proto.num_nodes()));
  for (int id : proto.TopologicalOrder()) {
    const query::QueryNode& n = proto.nodes()[static_cast<size_t>(id)];
    switch (n.op) {
      case query::OpType::kAnchor: {
        std::vector<int64_t> entities;
        for (const query::QueryGraph* q : queries) {
          entities.push_back(q->nodes()[static_cast<size_t>(id)].anchor_entity);
        }
        nodes[static_cast<size_t>(id)] = EmbedAnchors(entities);
        break;
      }
      case query::OpType::kProjection: {
        std::vector<int64_t> relations;
        for (const query::QueryGraph* q : queries) {
          relations.push_back(q->nodes()[static_cast<size_t>(id)].relation);
        }
        nodes[static_cast<size_t>(id)] =
            Projection(nodes[static_cast<size_t>(n.inputs[0])], relations);
        break;
      }
      case query::OpType::kIntersection: {
        std::vector<Tensor> inputs;
        for (int in : n.inputs) inputs.push_back(nodes[static_cast<size_t>(in)]);
        nodes[static_cast<size_t>(id)] = Intersection(inputs);
        break;
      }
      case query::OpType::kNegation:
        nodes[static_cast<size_t>(id)] =
            Negation(nodes[static_cast<size_t>(n.inputs[0])]);
        break;
      case query::OpType::kDifference:
        HALK_CHECK(false) << "MLPMix does not support the difference operator";
        break;
      case query::OpType::kUnion:
        HALK_CHECK(false) << "union must be lifted out by ToDnf";
        break;
    }
  }
  Tensor target = nodes[static_cast<size_t>(proto.target())];
  Tensor zeros = Tensor::Zeros(
      {target.shape().dim(0), target.shape().dim(1)});
  return {target, zeros};
}

Tensor MlpMixModel::Distance(const std::vector<int64_t>& entities,
                             const EmbeddingBatch& embedding) {
  Tensor points = tensor::Gather(entity_vecs_, entities);
  return tensor::SumDim(tensor::Abs(tensor::Sub(points, embedding.a)), 1);
}

void MlpMixModel::DistancesToAll(const EmbeddingBatch& embedding, int64_t row,
                                 std::vector<float>* out) const {
  const int64_t d = config_.dim;
  const float* q = embedding.a.data() + row * d;
  const float* table = entity_vecs_.data();
  out->resize(static_cast<size_t>(config_.num_entities));
  for (int64_t e = 0; e < config_.num_entities; ++e) {
    const float* p = table + e * d;
    float acc = 0.0f;
    for (int64_t i = 0; i < d; ++i) acc += std::fabs(p[i] - q[i]);
    (*out)[static_cast<size_t>(e)] = acc;
  }
}

std::vector<Tensor> MlpMixModel::Parameters() const {
  std::vector<Tensor> out = {entity_vecs_, rel_vecs_};
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(proj_.get()),
        static_cast<const nn::Module*>(inter_pre_.get()),
        static_cast<const nn::Module*>(inter_post_.get()),
        static_cast<const nn::Module*>(neg_.get())}) {
    for (const Tensor& p : m->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace halk::baselines
