#ifndef HALK_BASELINES_FACTORY_H_
#define HALK_BASELINES_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_model.h"

namespace halk::baselines {

/// All model names the factory can build, in presentation order:
/// "halk", "cone", "newlook", "mlpmix", "halk-v1", "halk-v2", "halk-v3".
std::vector<std::string> AvailableModels();

/// Builds a model by name. `grouping` may be null; only HaLk variants use
/// it (for the intersection z factor and training group penalty).
[[nodiscard]] Result<std::unique_ptr<core::QueryModel>> CreateModel(
    const std::string& name, const core::ModelConfig& config,
    const kg::NodeGrouping* grouping);

}  // namespace halk::baselines

#endif  // HALK_BASELINES_FACTORY_H_

