#ifndef HALK_BASELINES_BETAE_H_
#define HALK_BASELINES_BETAE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/query_model.h"
#include "nn/mlp.h"

namespace halk::baselines {

/// BetaE baseline (Ren & Leskovec, NeurIPS 2020) — the probabilistic
/// representative of the paper's second related-work group (Sec. II-C):
/// entities and queries are products of Beta(α, β) distributions,
///   * projection — MLP on (α ‖ β ‖ relation embedding);
///   * intersection — attention-weighted interpolation of parameters
///     (the weighted product of Beta pdfs stays in the family);
///   * negation — the reciprocal map (α, β) → (1/α, 1/β), the *linear*
///     transformation assumption the HaLk paper targets;
///   * no difference operator and no cardinality notion.
/// Distance is the summed KL divergence KL(entity ‖ query).
///
/// Not part of the paper's experimental tables (they compare ConE,
/// NewLook, MLPMix) but included for completeness of the related-work
/// taxonomy; usable anywhere a QueryModel is.
class BetaEModel : public core::QueryModel {
 public:
  BetaEModel(const core::ModelConfig& config,
             const kg::NodeGrouping* grouping);

  std::string name() const override { return "BetaE"; }

  core::EmbeddingBatch EmbedQueries(
      const std::vector<const query::QueryGraph*>& queries) override;

  tensor::Tensor Distance(const std::vector<int64_t>& entities,
                          const core::EmbeddingBatch& embedding) override;

  void DistancesToAll(const core::EmbeddingBatch& embedding, int64_t row,
                      std::vector<float>* out) const override;

  std::vector<tensor::Tensor> Parameters() const override;

  bool Supports(query::OpType op) const override {
    return op != query::OpType::kDifference;
  }

  // Operators; EmbeddingBatch.a = α, .b = β (both > kMinParam).
  core::EmbeddingBatch EmbedAnchors(const std::vector<int64_t>& entities);
  core::EmbeddingBatch Projection(const core::EmbeddingBatch& input,
                                  const std::vector<int64_t>& relations);
  core::EmbeddingBatch Intersection(
      const std::vector<core::EmbeddingBatch>& inputs);
  core::EmbeddingBatch Negation(const core::EmbeddingBatch& input);

  /// Lower bound on Beta parameters (keeps KL and its gradients finite).
  static constexpr float kMinParam = 0.05f;

 private:
  /// Maps raw activations to valid Beta parameters: softplus + kMinParam.
  tensor::Tensor Positive(const tensor::Tensor& raw) const;

  Rng rng_;
  tensor::Tensor entity_raw_;  // [N, 2d] raw (pre-softplus) α‖β
  tensor::Tensor rel_vecs_;    // [M, d]
  std::unique_ptr<nn::Mlp> proj_;       // 3d -> 2d
  std::unique_ptr<nn::Mlp> inter_att_;  // 2d -> d attention scores
};

}  // namespace halk::baselines

#endif  // HALK_BASELINES_BETAE_H_
