#ifndef HALK_BASELINES_NEWLOOK_H_
#define HALK_BASELINES_NEWLOOK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/query_model.h"
#include "nn/deepsets.h"
#include "nn/mlp.h"

namespace halk::baselines {

/// NewLook baseline (Liu et al., KDD 2021), reimplemented on the shared
/// substrate: entities are points in R^d, queries are axis-aligned
/// hyper-rectangles (center, non-negative offset). It supports the
/// difference operator but — as the HaLk paper analyses — its box geometry
/// cannot exactly represent difference regions (the "fixed-lossy" problem)
/// and its overlap features are raw value differences. It has no negation
/// operator (no universal set), giving the '-' cells of Tables III-IV.
class NewLookModel : public core::QueryModel {
 public:
  NewLookModel(const core::ModelConfig& config,
               const kg::NodeGrouping* grouping);

  std::string name() const override { return "NewLook"; }

  core::EmbeddingBatch EmbedQueries(
      const std::vector<const query::QueryGraph*>& queries) override;

  tensor::Tensor Distance(const std::vector<int64_t>& entities,
                          const core::EmbeddingBatch& embedding) override;

  void DistancesToAll(const core::EmbeddingBatch& embedding, int64_t row,
                      std::vector<float>* out) const override;

  std::vector<tensor::Tensor> Parameters() const override;

  bool Supports(query::OpType op) const override {
    return op != query::OpType::kNegation;
  }

  // Box operators; EmbeddingBatch.a = center, .b = offset (>= 0).
  core::EmbeddingBatch EmbedAnchors(const std::vector<int64_t>& entities);
  core::EmbeddingBatch Projection(const core::EmbeddingBatch& input,
                                  const std::vector<int64_t>& relations);
  core::EmbeddingBatch Intersection(
      const std::vector<core::EmbeddingBatch>& inputs);
  core::EmbeddingBatch Difference(
      const std::vector<core::EmbeddingBatch>& inputs);

 private:
  Rng rng_;
  tensor::Tensor entity_points_;  // [N, d]
  tensor::Tensor rel_center_;     // [M, d]
  tensor::Tensor rel_offset_;     // [M, d]
  std::unique_ptr<nn::Mlp> proj_;       // 2d -> 2d joint refinement
  std::unique_ptr<nn::Mlp> inter_att_;
  std::unique_ptr<nn::DeepSets> inter_sets_;
  std::unique_ptr<nn::Mlp> diff_att_;
  std::unique_ptr<nn::DeepSets> diff_sets_;
};

}  // namespace halk::baselines

#endif  // HALK_BASELINES_NEWLOOK_H_
