#ifndef HALK_BASELINES_ABLATIONS_H_
#define HALK_BASELINES_ABLATIONS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/halk_model.h"

namespace halk::baselines {

/// HaLk-V1 (Table V, difference ablation): the HaLk difference operator's
/// chord-length overlap computation is replaced with NewLook's raw-value
/// overlap, and the cardinality constraint (A_l bounded by the minuend) is
/// removed — the arclength is free in [0, 2πρ].
class HalkV1Model : public core::HalkModel {
 public:
  HalkV1Model(const core::ModelConfig& config,
              const kg::NodeGrouping* grouping);
  std::string name() const override { return "HaLk-V1"; }
  core::ArcBatch Difference(
      const std::vector<core::ArcBatch>& inputs) override;
  std::vector<tensor::Tensor> Parameters() const override;

 private:
  std::unique_ptr<nn::DeepSets> v1_sets_;
};

/// HaLk-V2 (Table V, negation ablation): negation degraded to the pure
/// linear transformation assumption (antipodal center, complementary
/// length) with no non-linear correction — the ConE/BetaE/MLPMix scheme.
class HalkV2Model : public core::HalkModel {
 public:
  HalkV2Model(const core::ModelConfig& config,
              const kg::NodeGrouping* grouping);
  std::string name() const override { return "HaLk-V2"; }
  core::ArcBatch Negation(const core::ArcBatch& input) override;
};

/// HaLk-V3 (Table V, projection ablation): the coordinated start/end-point
/// pair is replaced by NewLook/ConE-style projection that refines center
/// and arclength independently.
class HalkV3Model : public core::HalkModel {
 public:
  HalkV3Model(const core::ModelConfig& config,
              const kg::NodeGrouping* grouping);
  std::string name() const override { return "HaLk-V3"; }
  core::ArcBatch Projection(const core::ArcBatch& input,
                            const std::vector<int64_t>& relations) override;
  std::vector<tensor::Tensor> Parameters() const override;

 private:
  std::unique_ptr<nn::Mlp> v3_center_;  // d -> d, center only
  std::unique_ptr<nn::Mlp> v3_length_;  // d -> d, length only
};

}  // namespace halk::baselines

#endif  // HALK_BASELINES_ABLATIONS_H_
