#include "baselines/newlook.h"

#include <cmath>

#include "common/logging.h"
#include "nn/attention.h"
#include "nn/init.h"

namespace halk::baselines {

using core::EmbeddingBatch;
using tensor::Tensor;

NewLookModel::NewLookModel(const core::ModelConfig& config,
                           const kg::NodeGrouping* /*grouping*/)
    : QueryModel(config), rng_(config.seed) {
  const int64_t d = config.dim;
  const int64_t h = config.hidden;
  entity_points_ = Tensor::Zeros({config.num_entities, d});
  nn::UniformInit(&entity_points_, -1.0f, 1.0f, &rng_);
  entity_points_.set_requires_grad(true);
  rel_center_ = Tensor::Zeros({config.num_relations, d});
  nn::UniformInit(&rel_center_, -0.5f, 0.5f, &rng_);
  rel_center_.set_requires_grad(true);
  rel_offset_ = Tensor::Zeros({config.num_relations, d});
  nn::UniformInit(&rel_offset_, 0.0f, 0.02f, &rng_);
  rel_offset_.set_requires_grad(true);

  proj_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, 2 * d},
                                    &rng_);
  // Zero-initialized residual head: projection starts as a pure box
  // translation (see HalkModel for the rationale).
  proj_->ZeroInitFinalLayer();
  inter_att_ =
      std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d}, &rng_);
  inter_sets_ = std::make_unique<nn::DeepSets>(std::vector<int64_t>{2 * d, h},
                                               std::vector<int64_t>{h, d},
                                               &rng_);
  diff_att_ =
      std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d}, &rng_);
  diff_sets_ = std::make_unique<nn::DeepSets>(std::vector<int64_t>{2 * d, h},
                                              std::vector<int64_t>{h, d},
                                              &rng_);
}

EmbeddingBatch NewLookModel::EmbedAnchors(
    const std::vector<int64_t>& entities) {
  Tensor center = tensor::Gather(entity_points_, entities);
  Tensor offset =
      Tensor::Zeros({static_cast<int64_t>(entities.size()), config_.dim});
  return {center, offset};
}

EmbeddingBatch NewLookModel::Projection(
    const EmbeddingBatch& input, const std::vector<int64_t>& relations) {
  Tensor center = tensor::Add(input.a, tensor::Gather(rel_center_, relations));
  Tensor offset = tensor::Add(input.b, tensor::Gather(rel_offset_, relations));
  Tensor correction = proj_->Forward(tensor::Concat({center, offset}, 1));
  Tensor new_center =
      tensor::Add(center, tensor::SliceCols(correction, 0, config_.dim));
  Tensor new_offset = tensor::Abs(tensor::Add(
      offset,
      tensor::SliceCols(correction, config_.dim, 2 * config_.dim)));
  return {new_center, new_offset};
}

EmbeddingBatch NewLookModel::Intersection(
    const std::vector<EmbeddingBatch>& inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  std::vector<Tensor> scores;
  for (const EmbeddingBatch& in : inputs) {
    scores.push_back(inter_att_->Forward(tensor::Concat({in.a, in.b}, 1)));
  }
  std::vector<Tensor> weights = nn::SoftmaxAcross(scores);
  Tensor center;
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor term = tensor::Mul(weights[i], inputs[i].a);
    center = center.defined() ? tensor::Add(center, term) : term;
  }
  Tensor min_offset = inputs[0].b;
  for (size_t i = 1; i < inputs.size(); ++i) {
    min_offset = tensor::Minimum(min_offset, inputs[i].b);
  }
  std::vector<Tensor> pairs;
  for (const EmbeddingBatch& in : inputs) {
    pairs.push_back(tensor::Concat({in.a, in.b}, 1));
  }
  Tensor offset =
      tensor::Mul(min_offset, tensor::Sigmoid(inter_sets_->Forward(pairs)));
  return {center, offset};
}

EmbeddingBatch NewLookModel::Difference(
    const std::vector<EmbeddingBatch>& inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  // Attention biased to the minuend via doubled score; raw-value overlap
  // features (c_1 - c_j, o_1 - o_j) — the approximation the HaLk ablation
  // HaLk-V1 reproduces on the arc backbone.
  std::vector<Tensor> scores;
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor s = diff_att_->Forward(tensor::Concat({inputs[i].a, inputs[i].b}, 1));
    scores.push_back(i == 0 ? tensor::MulScalar(s, 2.0f) : s);
  }
  std::vector<Tensor> weights = nn::SoftmaxAcross(scores);
  Tensor center;
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor term = tensor::Mul(weights[i], inputs[i].a);
    center = center.defined() ? tensor::Add(center, term) : term;
  }
  std::vector<Tensor> features;
  for (size_t j = 1; j < inputs.size(); ++j) {
    features.push_back(tensor::Concat(
        {tensor::Sub(inputs[0].a, inputs[j].a),
         tensor::Sub(inputs[0].b, inputs[j].b)},
        1));
  }
  Tensor offset =
      tensor::Mul(inputs[0].b, tensor::Sigmoid(diff_sets_->Forward(features)));
  return {center, offset};
}

EmbeddingBatch NewLookModel::EmbedQueries(
    const std::vector<const query::QueryGraph*>& queries) {
  HALK_CHECK(!queries.empty());
  const query::QueryGraph& proto = *queries[0];
  std::vector<EmbeddingBatch> nodes(static_cast<size_t>(proto.num_nodes()));
  for (int id : proto.TopologicalOrder()) {
    const query::QueryNode& n = proto.nodes()[static_cast<size_t>(id)];
    switch (n.op) {
      case query::OpType::kAnchor: {
        std::vector<int64_t> entities;
        for (const query::QueryGraph* q : queries) {
          entities.push_back(q->nodes()[static_cast<size_t>(id)].anchor_entity);
        }
        nodes[static_cast<size_t>(id)] = EmbedAnchors(entities);
        break;
      }
      case query::OpType::kProjection: {
        std::vector<int64_t> relations;
        for (const query::QueryGraph* q : queries) {
          relations.push_back(q->nodes()[static_cast<size_t>(id)].relation);
        }
        nodes[static_cast<size_t>(id)] =
            Projection(nodes[static_cast<size_t>(n.inputs[0])], relations);
        break;
      }
      case query::OpType::kIntersection: {
        std::vector<EmbeddingBatch> inputs;
        for (int in : n.inputs) inputs.push_back(nodes[static_cast<size_t>(in)]);
        nodes[static_cast<size_t>(id)] = Intersection(inputs);
        break;
      }
      case query::OpType::kDifference: {
        std::vector<EmbeddingBatch> inputs;
        for (int in : n.inputs) inputs.push_back(nodes[static_cast<size_t>(in)]);
        nodes[static_cast<size_t>(id)] = Difference(inputs);
        break;
      }
      case query::OpType::kNegation:
        HALK_CHECK(false)
            << "NewLook does not support the negation operator";
        break;
      case query::OpType::kUnion:
        HALK_CHECK(false) << "union must be lifted out by ToDnf";
        break;
    }
  }
  return nodes[static_cast<size_t>(proto.target())];
}

Tensor NewLookModel::Distance(const std::vector<int64_t>& entities,
                              const EmbeddingBatch& embedding) {
  // Query2Box-style box distance: d_out + η·d_in.
  Tensor points = tensor::Gather(entity_points_, entities);
  Tensor delta = tensor::Abs(tensor::Sub(points, embedding.a));
  Tensor outside = tensor::Relu(tensor::Sub(delta, embedding.b));
  Tensor inside = tensor::Minimum(delta, embedding.b);
  return tensor::Add(tensor::SumDim(outside, 1),
                     tensor::MulScalar(tensor::SumDim(inside, 1),
                                       config_.eta));
}

void NewLookModel::DistancesToAll(const EmbeddingBatch& embedding,
                                  int64_t row, std::vector<float>* out) const {
  const int64_t d = config_.dim;
  const float* center = embedding.a.data() + row * d;
  const float* offset = embedding.b.data() + row * d;
  const float* table = entity_points_.data();
  out->resize(static_cast<size_t>(config_.num_entities));
  for (int64_t e = 0; e < config_.num_entities; ++e) {
    const float* p = table + e * d;
    float d_out = 0.0f;
    float d_in = 0.0f;
    for (int64_t i = 0; i < d; ++i) {
      const float delta = std::fabs(p[i] - center[i]);
      d_out += std::max(delta - offset[i], 0.0f);
      d_in += std::min(delta, offset[i]);
    }
    (*out)[static_cast<size_t>(e)] = d_out + config_.eta * d_in;
  }
}

std::vector<Tensor> NewLookModel::Parameters() const {
  std::vector<Tensor> out = {entity_points_, rel_center_, rel_offset_};
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(proj_.get()),
        static_cast<const nn::Module*>(inter_att_.get()),
        static_cast<const nn::Module*>(inter_sets_.get()),
        static_cast<const nn::Module*>(diff_att_.get()),
        static_cast<const nn::Module*>(diff_sets_.get())}) {
    for (const Tensor& p : m->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace halk::baselines
