#include "baselines/cone.h"

#include "common/logging.h"
#include "core/distance.h"
#include "nn/attention.h"
#include "nn/init.h"

namespace halk::baselines {

using core::ArcBatch;
using core::EmbeddingBatch;
using tensor::Tensor;

namespace {
constexpr float kPi = 3.14159265358979f;
constexpr float kTwoPi = 2.0f * kPi;
}  // namespace

ConeModel::ConeModel(const core::ModelConfig& config,
                     const kg::NodeGrouping* /*grouping*/)
    : QueryModel(config), rng_(config.seed) {
  const int64_t d = config.dim;
  const int64_t h = config.hidden;
  entity_angles_ = Tensor::Zeros({config.num_entities, d});
  nn::UniformInit(&entity_angles_, 0.0f, kTwoPi, &rng_);
  entity_angles_.set_requires_grad(true);
  rel_axis_ = Tensor::Zeros({config.num_relations, d});
  nn::UniformInit(&rel_axis_, -kPi, kPi, &rng_);
  rel_axis_.set_requires_grad(true);
  rel_aperture_ = Tensor::Zeros({config.num_relations, d});
  nn::UniformInit(&rel_aperture_, 0.0f, 0.02f, &rng_);
  rel_aperture_.set_requires_grad(true);

  proj_axis_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{d, h, d}, &rng_);
  proj_aperture_ =
      std::make_unique<nn::Mlp>(std::vector<int64_t>{d, h, d}, &rng_);
  // Zero-initialized residual heads (see HalkModel).
  proj_axis_->ZeroInitFinalLayer();
  proj_aperture_->ZeroInitFinalLayer();
  inter_att_ =
      std::make_unique<nn::Mlp>(std::vector<int64_t>{2 * d, h, d}, &rng_);
  inter_sets_ = std::make_unique<nn::DeepSets>(std::vector<int64_t>{2 * d, h},
                                               std::vector<int64_t>{h, d},
                                               &rng_);
}

ArcBatch ConeModel::EmbedAnchors(const std::vector<int64_t>& entities) {
  Tensor center = tensor::Gather(entity_angles_, entities);
  Tensor length =
      Tensor::Zeros({static_cast<int64_t>(entities.size()), config_.dim});
  return {center, length};
}

ArcBatch ConeModel::Projection(const ArcBatch& input,
                               const std::vector<int64_t>& relations) {
  constexpr float kPi = 3.14159265358979f;
  Tensor axis = tensor::Add(input.center, tensor::Gather(rel_axis_, relations));
  Tensor aperture =
      tensor::Add(input.length, tensor::Gather(rel_aperture_, relations));
  // Axis and aperture are refined *independently* (bounded residuals fed
  // only their own component) — the decoupling the HaLk paper identifies
  // as a source of cascading error.
  Tensor new_axis = tensor::Mod2Pi(tensor::Add(
      axis, tensor::MulScalar(
                tensor::Tanh(tensor::MulScalar(proj_axis_->Forward(axis),
                                               config_.lambda)),
                kPi)));
  Tensor new_aperture = tensor::Clamp(
      tensor::Add(aperture,
                  tensor::MulScalar(
                      tensor::Tanh(proj_aperture_->Forward(aperture)),
                      kPi / 4.0f)),
      0.0f, 2.0f * kPi * config_.rho);
  return {new_axis, new_aperture};
}

ArcBatch ConeModel::Intersection(const std::vector<ArcBatch>& inputs) {
  HALK_CHECK_GE(inputs.size(), 2u);
  std::vector<Tensor> scores;
  for (const ArcBatch& in : inputs) {
    scores.push_back(
        inter_att_->Forward(tensor::Concat({in.center, in.length}, 1)));
  }
  std::vector<Tensor> weights = nn::SoftmaxAcross(scores);
  // Raw-value angle averaging (periodicity-unsafe, per the paper's
  // critique of rotation baselines).
  Tensor axis;
  for (size_t i = 0; i < inputs.size(); ++i) {
    Tensor term = tensor::Mul(weights[i], inputs[i].center);
    axis = axis.defined() ? tensor::Add(axis, term) : term;
  }
  Tensor min_aperture = inputs[0].length;
  for (size_t i = 1; i < inputs.size(); ++i) {
    min_aperture = tensor::Minimum(min_aperture, inputs[i].length);
  }
  std::vector<Tensor> pairs;
  for (const ArcBatch& in : inputs) {
    pairs.push_back(tensor::Concat({in.center, in.length}, 1));
  }
  Tensor aperture = tensor::Mul(
      min_aperture, tensor::Sigmoid(inter_sets_->Forward(pairs)));
  return {axis, aperture};
}

ArcBatch ConeModel::Negation(const ArcBatch& input) {
  // Pure linear transformation assumption: antipodal axis, complementary
  // aperture, no learned correction.
  Tensor axis = tensor::Mod2Pi(tensor::AddScalar(input.center, kPi));
  Tensor aperture = tensor::AddScalar(tensor::Neg(input.length),
                                      kTwoPi * config_.rho);
  return {axis, aperture};
}

EmbeddingBatch ConeModel::EmbedQueries(
    const std::vector<const query::QueryGraph*>& queries) {
  HALK_CHECK(!queries.empty());
  const query::QueryGraph& proto = *queries[0];
  std::vector<ArcBatch> node_arcs(static_cast<size_t>(proto.num_nodes()));
  for (int id : proto.TopologicalOrder()) {
    const query::QueryNode& n = proto.nodes()[static_cast<size_t>(id)];
    switch (n.op) {
      case query::OpType::kAnchor: {
        std::vector<int64_t> entities;
        for (const query::QueryGraph* q : queries) {
          entities.push_back(q->nodes()[static_cast<size_t>(id)].anchor_entity);
        }
        node_arcs[static_cast<size_t>(id)] = EmbedAnchors(entities);
        break;
      }
      case query::OpType::kProjection: {
        std::vector<int64_t> relations;
        for (const query::QueryGraph* q : queries) {
          relations.push_back(q->nodes()[static_cast<size_t>(id)].relation);
        }
        node_arcs[static_cast<size_t>(id)] = Projection(
            node_arcs[static_cast<size_t>(n.inputs[0])], relations);
        break;
      }
      case query::OpType::kIntersection: {
        std::vector<ArcBatch> inputs;
        for (int in : n.inputs) inputs.push_back(node_arcs[static_cast<size_t>(in)]);
        node_arcs[static_cast<size_t>(id)] = Intersection(inputs);
        break;
      }
      case query::OpType::kNegation:
        node_arcs[static_cast<size_t>(id)] =
            Negation(node_arcs[static_cast<size_t>(n.inputs[0])]);
        break;
      case query::OpType::kDifference:
        HALK_CHECK(false) << "ConE does not support the difference operator";
        break;
      case query::OpType::kUnion:
        HALK_CHECK(false) << "union must be lifted out by ToDnf";
        break;
    }
  }
  const ArcBatch& t = node_arcs[static_cast<size_t>(proto.target())];
  return {t.center, t.length};
}

Tensor ConeModel::Distance(const std::vector<int64_t>& entities,
                           const EmbeddingBatch& embedding) {
  Tensor points = tensor::Gather(entity_angles_, entities);
  return core::ArcDistance(points, {embedding.a, embedding.b}, config_.rho,
                           config_.eta);
}

void ConeModel::DistancesToAll(const EmbeddingBatch& embedding, int64_t row,
                               std::vector<float>* out) const {
  const int64_t d = config_.dim;
  const float* center = embedding.a.data() + row * d;
  const float* length = embedding.b.data() + row * d;
  const float* table = entity_angles_.data();
  out->resize(static_cast<size_t>(config_.num_entities));
  for (int64_t e = 0; e < config_.num_entities; ++e) {
    (*out)[static_cast<size_t>(e)] = core::ArcPointDistance(
        table + e * d, center, length, d, config_.rho, config_.eta);
  }
}

std::vector<Tensor> ConeModel::Parameters() const {
  std::vector<Tensor> out = {entity_angles_, rel_axis_, rel_aperture_};
  for (const nn::Module* m :
       {static_cast<const nn::Module*>(proj_axis_.get()),
        static_cast<const nn::Module*>(proj_aperture_.get()),
        static_cast<const nn::Module*>(inter_att_.get()),
        static_cast<const nn::Module*>(inter_sets_.get())}) {
    for (const Tensor& p : m->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace halk::baselines
