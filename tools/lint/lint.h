#ifndef HALK_TOOLS_LINT_LINT_H_
#define HALK_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

/// halk_lint: a from-scratch, stdlib-only lint engine enforcing the repo's
/// correctness conventions over `src/` (see docs/static_analysis.md for the
/// rule catalog). It is deliberately textual — rules are written against
/// comment/string-stripped source lines, not an AST — which keeps the tool
/// dependency-free and fast enough to run on every build, at the cost of
/// only catching the idioms this codebase actually uses. Each rule has a
/// stable id usable in the allowlist file and in inline
/// `halk_lint:allow <rule>` comments.
namespace halk::lint {

/// One finding, formatted by callers as `file:line: [rule] message`.
struct Diagnostic {
  std::string file;
  int line = 0;  // 1-based; 0 = whole-file / repo-level finding
  std::string rule;
  std::string message;

  std::string ToString() const;
};

struct Options {
  /// Apply mechanical fixes in place (currently: nodiscard-status
  /// insertion). Non-mechanical rules always stay diagnostics.
  bool fix = false;
};

/// Result of linting one file. When `fix` was requested and a mechanical
/// rule fired, `fixed_text` holds the rewritten file and `changed` is true
/// (diagnostics for the fixed findings are still reported, marked fixed).
struct FileResult {
  std::vector<Diagnostic> diagnostics;
  std::string fixed_text;
  bool changed = false;
};

/// Replaces the contents of comments and string/char literals with spaces,
/// preserving every newline and byte offset, so token rules cannot fire on
/// prose or literals. Rules that *read* comments (`// order:`,
/// `halk_lint:allow`) consult the original text instead.
std::string StripCommentsAndStrings(const std::string& text);

/// Lints one file's content. `path` is used for diagnostics and for
/// path-scoped rules (header-only rules, tensor-arena exemption).
FileResult LintFileContent(const std::string& path, const std::string& text,
                           const Options& options);

/// Repo-hygiene rule over the root .gitignore: build trees (`build/`,
/// `build-*/`), bench artifacts (`BENCH_*.json`), and the CI `artifacts/`
/// directory must all be ignored so they can never be committed again.
/// `exists` is false when no .gitignore was found at the root.
std::vector<Diagnostic> LintGitignore(const std::string& gitignore_path,
                                      const std::string& text, bool exists);

/// One allowlist entry: `rule path-substring  # justification`.
struct AllowEntry {
  std::string rule;
  std::string path_substring;
  bool has_justification = false;
  int line = 0;
};

/// Parses the allowlist. Entries missing a `# justification` comment are
/// themselves diagnostics (rule `allowlist-justification`) — grandfathered
/// sites must say why.
std::vector<AllowEntry> ParseAllowlist(const std::string& text,
                                       const std::string& path,
                                       std::vector<Diagnostic>* diagnostics);

/// True when `rule` at `path` is suppressed by an allowlist entry.
bool Allowed(const std::vector<AllowEntry>& entries, const std::string& rule,
             const std::string& path);

}  // namespace halk::lint

#endif  // HALK_TOOLS_LINT_LINT_H_
