// halk_lint CLI: walks the given files/directories (.h/.cc/.cpp), applies
// the rule engine in tools/lint/lint.{h,cc}, filters findings through the
// allowlist, and prints `file:line: [rule] message` per finding.
//
// Usage:
//   halk_lint [--fix] [--allowlist FILE] [--root DIR] <paths...>
//
// Exit status: 0 when clean (or when --fix repaired every finding),
// 1 when unfixed findings remain, 2 on usage/IO errors.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsLintableSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

void CollectFiles(const fs::path& path, std::vector<fs::path>* out) {
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::recursive_directory_iterator(path)) {
      if (entry.is_regular_file() && IsLintableSource(entry.path())) {
        out->push_back(entry.path());
      }
    }
  } else {
    out->push_back(path);
  }
}

int Usage() {
  std::cerr << "usage: halk_lint [--fix] [--allowlist FILE] [--root DIR] "
               "<paths...>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  halk::lint::Options options;
  std::string allowlist_path;
  std::string root = ".";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix") {
      options.fix = true;
    } else if (arg == "--allowlist") {
      if (++i >= argc) return Usage();
      allowlist_path = argv[i];
    } else if (arg == "--root") {
      if (++i >= argc) return Usage();
      root = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "halk_lint: unknown flag " << arg << "\n";
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();

  std::vector<halk::lint::Diagnostic> diagnostics;

  // Allowlist: explicit flag wins; otherwise the conventional location under
  // the root, which is optional.
  std::vector<halk::lint::AllowEntry> allow;
  if (allowlist_path.empty()) {
    const fs::path conventional =
        fs::path(root) / "tools" / "halk_lint_allowlist.txt";
    if (fs::exists(conventional)) allowlist_path = conventional.string();
  }
  if (!allowlist_path.empty()) {
    std::string text;
    if (!ReadFile(allowlist_path, &text)) {
      std::cerr << "halk_lint: cannot read allowlist " << allowlist_path
                << "\n";
      return 2;
    }
    allow = halk::lint::ParseAllowlist(text, allowlist_path, &diagnostics);
  }

  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    if (!fs::exists(input)) {
      std::cerr << "halk_lint: no such file or directory: " << input << "\n";
      return 2;
    }
    CollectFiles(input, &files);
  }
  std::sort(files.begin(), files.end());

  int fixed = 0;
  for (const fs::path& file : files) {
    std::string text;
    if (!ReadFile(file, &text)) {
      std::cerr << "halk_lint: cannot read " << file.string() << "\n";
      return 2;
    }
    const std::string path = file.generic_string();
    halk::lint::FileResult result =
        halk::lint::LintFileContent(path, text, options);
    for (halk::lint::Diagnostic& d : result.diagnostics) {
      if (halk::lint::Allowed(allow, d.rule, path)) continue;
      diagnostics.push_back(std::move(d));
    }
    if (result.changed) {
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      out << result.fixed_text;
      ++fixed;
    }
  }

  // Repo hygiene: the root .gitignore must fence off build trees and
  // generated artifacts.
  {
    const fs::path gitignore = fs::path(root) / ".gitignore";
    std::string text;
    const bool exists = fs::exists(gitignore) && ReadFile(gitignore, &text);
    for (halk::lint::Diagnostic& d : halk::lint::LintGitignore(
             gitignore.generic_string(), text, exists)) {
      if (halk::lint::Allowed(allow, d.rule, d.file)) continue;
      diagnostics.push_back(std::move(d));
    }
  }

  int failures = 0;
  for (const halk::lint::Diagnostic& d : diagnostics) {
    std::cout << d.ToString() << "\n";
    if (d.message.rfind("[fixed] ", 0) != 0) ++failures;
  }
  if (failures > 0) {
    std::cout << "halk_lint: " << failures << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  if (fixed > 0) {
    std::cout << "halk_lint: fixed " << fixed << " file(s), no findings "
              << "remain\n";
  }
  return 0;
}
