#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace halk::lint {

namespace {

/// Splits into lines without the trailing newline; always at least one
/// (possibly empty) line so line indices stay aligned with the file.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& path) { return EndsWith(path, ".h"); }

bool IsTensorArenaPath(const std::string& path) {
  return path.find("/tensor/") != std::string::npos ||
         path.rfind("tensor/", 0) == 0;
}

bool IsStorePath(const std::string& path) {
  return path.find("/store/") != std::string::npos ||
         path.rfind("store/", 0) == 0;
}

/// True when the original line carries `halk_lint:allow <rule>`.
bool InlineAllowed(const std::string& original_line, const std::string& rule) {
  const std::string needle = "halk_lint:allow " + rule;
  return original_line.find(needle) != std::string::npos;
}

/// True when any of lines [first, last] (0-based, inclusive) carries an
/// `// order:` justification comment.
bool HasOrderComment(const std::vector<std::string>& original_lines,
                     int first, int last) {
  first = std::max(first, 0);
  for (int i = first; i <= last && i < static_cast<int>(original_lines.size());
       ++i) {
    const std::string& line = original_lines[i];
    const size_t pos = line.find("order:");
    if (pos == std::string::npos) continue;
    // Must live in a // comment on the same line.
    const size_t slashes = line.rfind("//", pos);
    if (slashes != std::string::npos) return true;
  }
  return false;
}

void Add(std::vector<Diagnostic>* out, const std::string& file, int line,
         const char* rule, std::string message) {
  out->push_back(Diagnostic{file, line, rule, std::move(message)});
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream out;
  out << file;
  if (line > 0) out << ":" << line;
  out << ": [" << rule << "] " << message;
  return out.str();
}

std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for )delim" matching
  size_t i = 0;
  const size_t n = text.size();
  auto blank = [&out](size_t at) {
    if (out[at] != '\n') out[at] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"') {
          // Raw string literal: R"delim( ... )delim" — the prefix R must
          // not be part of a longer identifier (uR/u8R/LR are fine).
          size_t r = i;
          bool raw = false;
          if (r > 0 && text[r - 1] == 'R') {
            size_t before = r >= 2 ? r - 2 : std::string::npos;
            const bool ident_before =
                before != std::string::npos &&
                (std::isalnum(static_cast<unsigned char>(text[before])) != 0 ||
                 text[before] == '_');
            // Allow encoding prefixes u8R / uR / LR by skipping over them.
            raw = !ident_before || text[before] == 'u' ||
                  text[before] == 'L' || text[before] == '8';
          }
          if (raw) {
            raw_delim.clear();
            size_t j = i + 1;
            while (j < n && text[j] != '(') raw_delim += text[j++];
            state = State::kRawString;
            while (i <= j && i < n) blank(i++);
          } else {
            state = State::kString;
            blank(i);
            ++i;
          }
        } else if (c == '\'') {
          state = State::kChar;
          blank(i);
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          i += 2;
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          blank(i);
          if (i + 1 < n) blank(i + 1);
          i += 2;
        } else if (c == '"') {
          blank(i);
          ++i;
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          blank(i);
          if (i + 1 < n) blank(i + 1);
          i += 2;
        } else if (c == '\'') {
          blank(i);
          ++i;
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (text.compare(i, closer.size(), closer) == 0) {
          for (size_t j = 0; j < closer.size(); ++j) blank(i + j);
          i += closer.size();
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
      }
    }
  }
  return out;
}

FileResult LintFileContent(const std::string& path, const std::string& text,
                           const Options& options) {
  FileResult result;
  const std::string stripped = StripCommentsAndStrings(text);
  std::vector<std::string> lines = SplitLines(stripped);
  const std::vector<std::string> original = SplitLines(text);
  const bool is_header = IsHeaderPath(path);
  const bool is_status_h = EndsWith(path, "common/status.h");

  // --- no-using-namespace-header -----------------------------------------
  static const std::regex kUsingNamespaceRe(R"(\busing\s+namespace\b)");
  if (is_header) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!std::regex_search(lines[i], kUsingNamespaceRe)) continue;
      if (InlineAllowed(original[i], "no-using-namespace-header")) continue;
      Add(&result.diagnostics, path, static_cast<int>(i + 1),
          "no-using-namespace-header",
          "`using namespace` in a header leaks into every includer; "
          "qualify names or use a namespace alias");
    }
  }

  // --- no-raw-new-delete --------------------------------------------------
  // Raw new/delete is reserved for tensor arena code; everything else uses
  // containers and smart pointers. `= delete` declarations are not deletes.
  static const std::regex kRawNewRe(R"(\bnew\b\s*[\w:(<])");
  static const std::regex kRawDeleteRe(R"((^|[^=\s]\s*|[^=\s])\bdelete\b\s*(\[\s*\])?\s*[\w:*(])");
  if (!IsTensorArenaPath(path)) {
    for (size_t i = 0; i < lines.size(); ++i) {
      const bool has_new = std::regex_search(lines[i], kRawNewRe);
      bool has_delete = false;
      if (lines[i].find("delete") != std::string::npos) {
        // Reject `= delete` / `= delete;` forms, catch expression deletes.
        static const std::regex kDefaultedRe(R"(=\s*delete\s*;?)");
        std::string without = std::regex_replace(lines[i], kDefaultedRe, "");
        has_delete = std::regex_search(without, std::regex(R"(\bdelete\b)"));
      }
      if (!has_new && !has_delete) continue;
      if (InlineAllowed(original[i], "no-raw-new-delete")) continue;
      Add(&result.diagnostics, path, static_cast<int>(i + 1),
          "no-raw-new-delete",
          "raw new/delete outside tensor arena code; use std::make_unique, "
          "containers, or the arena");
    }
  }

  // --- no-std-mutex -------------------------------------------------------
  // std synchronization primitives carry no thread-safety annotations, so
  // clang's -Wthread-safety cannot check them; use halk::Mutex / MutexLock
  // / CondVar from common/mutex.h.
  static const std::regex kStdMutexRe(
      R"(\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable(_any)?|lock_guard|unique_lock|scoped_lock)\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i], kStdMutexRe)) continue;
    if (InlineAllowed(original[i], "no-std-mutex")) continue;
    Add(&result.diagnostics, path, static_cast<int>(i + 1), "no-std-mutex",
        "std synchronization primitive is invisible to -Wthread-safety; "
        "use halk::Mutex / MutexLock / CondVar (common/mutex.h)");
  }

  // --- mutex-guarded ------------------------------------------------------
  // Every mutex member must actually guard something: at least one sibling
  // declaration annotated HALK_GUARDED_BY / HALK_PT_GUARDED_BY naming it.
  static const std::regex kMutexMemberRe(
      R"(^\s*(mutable\s+)?(halk::)?(Mutex|std::mutex|std::shared_mutex)\s+(\w+)\s*;)");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kMutexMemberRe)) continue;
    if (lines[i].find("static") != std::string::npos) continue;
    const std::string name = m[4];
    const bool guarded =
        stripped.find("HALK_GUARDED_BY(" + name + ")") != std::string::npos ||
        stripped.find("HALK_PT_GUARDED_BY(" + name + ")") !=
            std::string::npos;
    if (guarded) continue;
    if (InlineAllowed(original[i], "mutex-guarded")) continue;
    Add(&result.diagnostics, path, static_cast<int>(i + 1), "mutex-guarded",
        "mutex member `" + name +
            "` has no sibling HALK_GUARDED_BY(" + name +
            ") field; annotate what it protects");
  }

  // --- memory-order-comment ----------------------------------------------
  // Explicit weak orderings are load-bearing; each use must carry (within
  // the preceding 10 lines) a `// order:` comment justifying why the
  // ordering is sufficient.
  static const std::regex kMemoryOrderRe(
      R"(\bmemory_order_(relaxed|acquire|release|acq_rel)\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i], kMemoryOrderRe)) continue;
    if (HasOrderComment(original, static_cast<int>(i) - 10,
                        static_cast<int>(i))) {
      continue;
    }
    if (InlineAllowed(original[i], "memory-order-comment")) continue;
    Add(&result.diagnostics, path, static_cast<int>(i + 1),
        "memory-order-comment",
        "explicit memory_order without an adjacent `// order:` "
        "justification comment");
  }

  // --- profile-scope-literal ----------------------------------------------
  // Profiler region names are interned by pointer + strcmp into a fixed
  // per-thread arena, so HALK_PROFILE_SCOPE must be given a string literal:
  // a dynamic name would mint a new arena node per distinct value and make
  // the collapsed flamegraph unreadable. The macro's own #define is exempt.
  static const std::regex kProfileScopeRe(R"(\bHALK_PROFILE_SCOPE\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kProfileScopeRe)) continue;
    // Skip the macro definition itself (and any #undef/#ifdef mentions).
    const size_t first_char = lines[i].find_first_not_of(" \t");
    if (first_char != std::string::npos && lines[i][first_char] == '#') {
      continue;
    }
    // Find the first non-whitespace character after the `(` in the
    // *original* text (the stripped text blanks quote characters),
    // continuing onto following lines for wrapped call sites.
    size_t li = i;
    size_t ci = static_cast<size_t>(m.position(0)) +
                static_cast<size_t>(m.length(0));
    bool literal = false;
    bool found = false;
    while (li < original.size() && !found) {
      const std::string& text_line = original[li];
      while (ci < text_line.size() &&
             std::isspace(static_cast<unsigned char>(text_line[ci])) != 0) {
        ++ci;
      }
      if (ci < text_line.size()) {
        literal = text_line[ci] == '"';
        found = true;
      } else {
        ++li;
        ci = 0;
      }
    }
    if (found && literal) continue;
    if (InlineAllowed(original[i], "profile-scope-literal")) continue;
    Add(&result.diagnostics, path, static_cast<int>(i + 1),
        "profile-scope-literal",
        "HALK_PROFILE_SCOPE argument must be a string literal; dynamic "
        "region names grow the profiler arena without bound");
  }

  // --- metric-name-convention ----------------------------------------------
  // Metric families share one namespace with every dashboard and alert
  // rule scraping /metrics; the convention is lowercase dotted
  // identifiers ("family.metric"), sanitized to underscores only at the
  // Prometheus boundary. Checking the literal at registry call sites
  // keeps a typo'd or CamelCase name from silently minting a new family.
  // Dynamic (non-literal) name arguments cannot be checked textually and
  // are skipped.
  static const std::regex kMetricCallRe(
      R"(\b(GetCounter|GetGauge|GetHistogram|CounterValue|GaugeValue|GaugeChildren)\s*\()");
  static const std::regex kMetricNameRe(
      R"(^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const auto begin = std::sregex_iterator(lines[i].begin(), lines[i].end(),
                                            kMetricCallRe);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      // Find the first non-whitespace character after the `(` in the
      // *original* text (the stripped text blanks literal contents),
      // continuing onto following lines for wrapped call sites.
      size_t li = i;
      size_t ci = static_cast<size_t>(it->position(0)) +
                  static_cast<size_t>(it->length(0));
      while (li < original.size() &&
             original[li].find_first_not_of(" \t", ci) == std::string::npos) {
        ++li;
        ci = 0;
      }
      if (li >= original.size()) continue;
      ci = original[li].find_first_not_of(" \t", ci);
      if (original[li][ci] != '"') continue;  // dynamic name: unchecked
      const size_t close = original[li].find('"', ci + 1);
      if (close == std::string::npos) continue;
      const std::string name = original[li].substr(ci + 1, close - ci - 1);
      if (std::regex_match(name, kMetricNameRe)) continue;
      if (InlineAllowed(original[i], "metric-name-convention")) continue;
      Add(&result.diagnostics, path, static_cast<int>(i + 1),
          "metric-name-convention",
          "metric name `" + name +
              "` is not a lowercase dotted identifier "
              "(`^[a-z][a-z0-9_]*(\\.[a-z0-9_]+)*$`); nonconforming names "
              "mint surprise Prometheus families");
    }
  }

  // --- store-fixed-width-int ----------------------------------------------
  // The store's on-disk layout (store/format.h) is defined by the exact
  // byte width of every integer field, and its public API traffics in the
  // same quantities. Bare `int` / `long` / `short` / `unsigned` / `signed`
  // in a store header would make a format- or API-visible width depend on
  // the ABI; require the <cstdint> fixed-width types (or size_t for
  // in-memory byte counts).
  static const std::regex kBareIntRe(
      R"(\b(?:unsigned|signed|short)\b|\blong\b|\bint\b)");
  if (is_header && IsStorePath(path)) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (!std::regex_search(lines[i], kBareIntRe)) continue;
      if (InlineAllowed(original[i], "store-fixed-width-int")) continue;
      Add(&result.diagnostics, path, static_cast<int>(i + 1),
          "store-fixed-width-int",
          "bare integer type in a store header; the on-disk format and "
          "store API are width-exact — use a <cstdint> fixed-width type");
    }
  }

  // --- nodiscard-status ---------------------------------------------------
  if (is_status_h) {
    // The sweep's root: Status and Result themselves are [[nodiscard]] at
    // class level, which makes every function returning them checked by
    // the compiler even without per-declaration attributes.
    for (const char* cls : {"Status", "Result"}) {
      const std::string decl = std::string("class [[nodiscard]] ") + cls;
      if (stripped.find(decl) != std::string::npos) continue;
      Add(&result.diagnostics, path, 0, "nodiscard-status",
          std::string("class `") + cls +
              "` in common/status.h must be declared class-level "
              "[[nodiscard]]");
    }
  } else if (is_header) {
    // Fallible API surface: declarations returning Status / Result<T> in
    // headers carry [[nodiscard]] explicitly so the contract reads at the
    // declaration (the class-level attribute enforces it regardless).
    static const std::regex kFallibleDeclRe(
        R"(^(\s*)((virtual\s+|static\s+|inline\s+|friend\s+)*)((halk::)?(Status|Result<.+>))\s+(\w+)\s*\()");
    std::string rebuilt;
    bool changed = false;
    for (size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      bool fixed_this_line = false;
      if (std::regex_search(lines[i], m, kFallibleDeclRe) &&
          lines[i].find("[[nodiscard]]") == std::string::npos &&
          original[i].find("[[nodiscard]]") == std::string::npos &&
          (i == 0 ||
           original[i - 1].find("[[nodiscard]]") == std::string::npos)) {
        if (!InlineAllowed(original[i], "nodiscard-status")) {
          if (options.fix) {
            fixed_this_line = true;
            changed = true;
          }
          Add(&result.diagnostics, path, static_cast<int>(i + 1),
              "nodiscard-status",
              std::string(options.fix ? "[fixed] " : "") +
                  "declaration returning " + m[4].str() +
                  " must be [[nodiscard]]");
        }
      }
      if (options.fix) {
        if (fixed_this_line) {
          const std::string indent = m[1];
          rebuilt += indent + "[[nodiscard]] " +
                     original[i].substr(indent.size());
        } else {
          rebuilt += original[i];
        }
        if (i + 1 < original.size() || EndsWith(text, "\n")) rebuilt += "\n";
      }
    }
    if (options.fix && changed) {
      result.fixed_text = rebuilt;
      result.changed = true;
    }
  }

  return result;
}

std::vector<Diagnostic> LintGitignore(const std::string& gitignore_path,
                                      const std::string& text, bool exists) {
  std::vector<Diagnostic> out;
  if (!exists) {
    Add(&out, gitignore_path, 0, "gitignore-hygiene",
        "repository has no .gitignore; build trees and bench artifacts "
        "would be committable");
    return out;
  }
  const std::vector<std::string> lines = SplitLines(text);
  auto has_pattern = [&lines](std::initializer_list<const char*> any_of) {
    for (const std::string& raw : lines) {
      std::string line = raw;
      while (!line.empty() && std::isspace(static_cast<unsigned char>(
                                  line.back())) != 0) {
        line.pop_back();
      }
      for (const char* candidate : any_of) {
        if (line == candidate) return true;
      }
    }
    return false;
  };
  struct Required {
    std::initializer_list<const char*> alternatives;
    const char* what;
  };
  const Required required[] = {
      {{"build/", "build*/"}, "the default build tree (build/)"},
      {{"build-*/", "build*/"},
       "suffixed build trees (build-*/, e.g. build-tsan/)"},
      {{"BENCH_*.json"}, "bench result artifacts (BENCH_*.json)"},
      {{"artifacts/"}, "the CI artifacts directory (artifacts/)"},
  };
  for (const Required& r : required) {
    if (has_pattern(r.alternatives)) continue;
    Add(&out, gitignore_path, 0, "gitignore-hygiene",
        std::string(".gitignore must ignore ") + r.what);
  }
  return out;
}

std::vector<AllowEntry> ParseAllowlist(const std::string& text,
                                       const std::string& path,
                                       std::vector<Diagnostic>* diagnostics) {
  std::vector<AllowEntry> entries;
  const std::vector<std::string> lines = SplitLines(text);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;  // full-line comment
    AllowEntry entry;
    entry.line = static_cast<int>(i + 1);
    const size_t hash = line.find('#');
    entry.has_justification =
        hash != std::string::npos &&
        line.find_first_not_of(" \t", hash + 1) != std::string::npos;
    std::istringstream fields(line.substr(0, hash));
    fields >> entry.rule >> entry.path_substring;
    if (entry.rule.empty() || entry.path_substring.empty()) {
      Add(diagnostics, path, entry.line, "allowlist-syntax",
          "allowlist entries are `<rule> <path-substring>  # justification`");
      continue;
    }
    if (!entry.has_justification) {
      Add(diagnostics, path, entry.line, "allowlist-justification",
          "allowlist entry for rule `" + entry.rule +
              "` carries no `# justification` comment");
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

bool Allowed(const std::vector<AllowEntry>& entries, const std::string& rule,
             const std::string& path) {
  for (const AllowEntry& entry : entries) {
    if (entry.rule != rule && entry.rule != "*") continue;
    if (path.find(entry.path_substring) != std::string::npos) return true;
  }
  return false;
}

}  // namespace halk::lint
