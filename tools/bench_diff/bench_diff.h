#ifndef HALK_TOOLS_BENCH_DIFF_BENCH_DIFF_H_
#define HALK_TOOLS_BENCH_DIFF_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace halk::benchdiff {

struct Options {
  /// Maximum relative deviation of a throughput key before the diff
  /// fails, as a fraction of the baseline (0.25 = ±25%).
  double tolerance = 0.25;
  /// Fail when a throughput key present in the baseline is missing from
  /// the fresh run (schema regressions); off by default so adding keys
  /// never breaks older baselines.
  bool fail_on_missing = false;
  /// Maximum relative *increase* of a latency-quantile key (p50/p95/p99)
  /// before the diff fails, as a fraction of the baseline (1.0 = may
  /// double). Asymmetric on purpose: latency getting faster is never a
  /// failure, only getting slower is. Negative disables the gate (the
  /// default, matching the historical latency-is-informational behavior).
  double latency_tolerance = -1.0;
};

/// One compared key.
struct KeyDelta {
  std::string key;
  double baseline = 0.0;
  double fresh = 0.0;
  /// fresh/baseline - 1 (0 when the baseline is 0 and fresh is too).
  double relative = 0.0;
  /// True for throughput keys, which are held to the tolerance.
  bool checked = false;
  bool failed = false;
};

struct Report {
  std::vector<KeyDelta> deltas;
  /// Human-readable notes: missing keys, non-numeric keys, etc.
  std::vector<std::string> notes;
  /// False when any checked key exceeded the tolerance (or a required key
  /// is missing under fail_on_missing).
  bool ok = true;

  std::string ToString() const;
};

/// True for keys the diff enforces the tolerance on: `qps`, `qps_*`,
/// `*_qps` — raw throughput numbers. Ratios (speedup_*), latencies, and
/// counts are reported but never fail the diff (they are either derived
/// from qps or too machine-sensitive for a fixed gate).
bool IsThroughputKey(const std::string& key);

/// True for latency-quantile keys: any key containing `p50`, `p95`, or
/// `p99` as an underscore-delimited token (`p99_ms`, `batched_p50_ms`).
/// These gate only when Options::latency_tolerance >= 0, and only in the
/// slower direction.
bool IsLatencyQuantileKey(const std::string& key);

/// Diffs two BENCH_<name>.json payloads (flat JSON objects as written by
/// BenchJson::Emit). kParseError on malformed input; kInvalidArgument
/// when the two files are different benches.
[[nodiscard]] Result<Report> DiffBenchJson(const std::string& baseline_text,
                                           const std::string& fresh_text,
                                           const Options& options);

/// Renders one flat JSONL history record for an executed diff — the line
/// `--history <file>` appends so CI accumulates a longitudinal perf
/// trajectory. Carries record="bench_diff", the bench name and the fresh
/// run's provenance (`git_sha` / `timestamp`, copied verbatim from the
/// BenchJson header fields; absent keys render as empty strings), the
/// pass/fail verdict, and one `d_<key>` relative-delta number per
/// compared key. kParseError/kInvalidArgument mirror DiffBenchJson.
[[nodiscard]] Result<std::string> HistoryRecord(const std::string& fresh_text,
                                                const Report& report);

}  // namespace halk::benchdiff

#endif  // HALK_TOOLS_BENCH_DIFF_BENCH_DIFF_H_
