// halk_bench_diff: compare a fresh BENCH_<name>.json against a committed
// baseline. Throughput keys (qps, qps_*, *_qps) must stay within a relative
// tolerance (default ±25%); with --latency-tolerance, latency quantiles
// (p50/p95/p99 keys) additionally gate one-sided — only slowdowns beyond
// the bound fail, improvements never do. Everything else is reported
// informationally.
//
//   halk_bench_diff <baseline.json> <fresh.json> [--tolerance 0.25]
//                   [--latency-tolerance 1.0] [--fail-on-missing]
//                   [--history deltas.jsonl]
//
// --history appends one flat JSONL record per executed comparison (bench
// name, the fresh run's git_sha/timestamp provenance, pass/fail, the
// relative delta of every compared key) to the given file, so CI runs
// accumulate a longitudinal perf trajectory next to the gate itself.
//
// Exit codes: 0 within tolerance, 1 regression (or missing key under
// --fail-on-missing), 2 usage/IO/parse error. A history append failure is
// exit 2 even when the diff itself passed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/bench_diff/bench_diff.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: halk_bench_diff <baseline.json> <fresh.json> "
               "[--tolerance F] [--latency-tolerance F] "
               "[--fail-on-missing] [--history FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  std::string history_path;
  halk::benchdiff::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance") {
      if (i + 1 >= argc) return Usage();
      options.tolerance = std::atof(argv[++i]);
      if (options.tolerance <= 0.0) {
        std::fprintf(stderr, "error: --tolerance must be > 0\n");
        return 2;
      }
    } else if (arg == "--latency-tolerance") {
      if (i + 1 >= argc) return Usage();
      options.latency_tolerance = std::atof(argv[++i]);
      if (options.latency_tolerance < 0.0) {
        std::fprintf(stderr, "error: --latency-tolerance must be >= 0\n");
        return 2;
      }
    } else if (arg == "--fail-on-missing") {
      options.fail_on_missing = true;
    } else if (arg == "--history") {
      if (i + 1 >= argc) return Usage();
      history_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (fresh_path.empty()) {
      fresh_path = arg;
    } else {
      return Usage();
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) return Usage();

  std::string baseline_text;
  std::string fresh_text;
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  if (!ReadFile(fresh_path, &fresh_text)) {
    std::fprintf(stderr, "error: cannot read %s\n", fresh_path.c_str());
    return 2;
  }

  auto report =
      halk::benchdiff::DiffBenchJson(baseline_text, fresh_text, options);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", report->ToString().c_str());

  if (!history_path.empty()) {
    auto record = halk::benchdiff::HistoryRecord(fresh_text, *report);
    if (!record.ok()) {
      std::fprintf(stderr, "error: cannot build history record: %s\n",
                   record.status().ToString().c_str());
      return 2;
    }
    std::ofstream history(history_path, std::ios::app);
    history << *record << "\n";
    history.flush();
    if (!history.good()) {
      std::fprintf(stderr, "error: cannot append to %s\n",
                   history_path.c_str());
      return 2;
    }
  }
  return report->ok ? 0 : 1;
}
