#include "tools/bench_diff/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/journal.h"

namespace halk::benchdiff {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool IsThroughputKey(const std::string& key) {
  return key == "qps" || key.rfind("qps_", 0) == 0 || EndsWith(key, "_qps");
}

bool IsLatencyQuantileKey(const std::string& key) {
  size_t start = 0;
  while (start <= key.size()) {
    const size_t end = std::min(key.find('_', start), key.size());
    const std::string token = key.substr(start, end - start);
    if (token == "p50" || token == "p95" || token == "p99") return true;
    start = end + 1;
  }
  return false;
}

std::string Report::ToString() const {
  std::ostringstream out;
  for (const KeyDelta& d : deltas) {
    out << (d.failed ? "FAIL " : d.checked ? "  ok " : "     ") << d.key
        << ": " << d.baseline << " -> " << d.fresh;
    if (d.baseline != 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " (%+.1f%%)", d.relative * 100.0);
      out << buf;
    }
    out << "\n";
  }
  for (const std::string& note : notes) out << "note: " << note << "\n";
  out << (ok ? "PASS" : "FAIL") << "\n";
  return out.str();
}

Result<Report> DiffBenchJson(const std::string& baseline_text,
                             const std::string& fresh_text,
                             const Options& options) {
  HALK_ASSIGN_OR_RETURN(obs::JsonObject baseline,
                        obs::ParseJsonLine(baseline_text));
  HALK_ASSIGN_OR_RETURN(obs::JsonObject fresh,
                        obs::ParseJsonLine(fresh_text));

  const obs::JsonValue* baseline_name = obs::FindKey(baseline, "bench");
  const obs::JsonValue* fresh_name = obs::FindKey(fresh, "bench");
  if (baseline_name == nullptr || fresh_name == nullptr ||
      !baseline_name->is_string() || !fresh_name->is_string()) {
    return Status::InvalidArgument("missing \"bench\" key");
  }
  if (baseline_name->string_value != fresh_name->string_value) {
    return Status::InvalidArgument(
        "comparing different benches: " + baseline_name->string_value +
        " vs " + fresh_name->string_value);
  }

  Report report;
  for (const auto& [key, baseline_value] : baseline) {
    if (!baseline_value.is_number()) continue;
    const obs::JsonValue* fresh_value = obs::FindKey(fresh, key);
    const bool throughput = IsThroughputKey(key);
    const bool latency =
        options.latency_tolerance >= 0.0 && IsLatencyQuantileKey(key);
    if (fresh_value == nullptr || !fresh_value->is_number()) {
      report.notes.push_back("key `" + key + "` missing from fresh run");
      if (throughput && options.fail_on_missing) report.ok = false;
      continue;
    }
    KeyDelta delta;
    delta.key = key;
    delta.baseline = baseline_value.number;
    delta.fresh = fresh_value->number;
    delta.relative = delta.baseline != 0.0
                         ? delta.fresh / delta.baseline - 1.0
                         : (delta.fresh == 0.0 ? 0.0 : HUGE_VAL);
    delta.checked = throughput || latency;
    if (throughput) {
      // Symmetric gate: a "too good" number usually means the workload
      // silently shrank.
      delta.failed = !(std::fabs(delta.relative) <= options.tolerance);
    } else if (latency) {
      // Asymmetric gate: only slowdowns fail; quantiles improving (or the
      // baseline being zero with fresh zero too) always pass.
      delta.failed = !(delta.relative <= options.latency_tolerance);
    }
    if (delta.failed) report.ok = false;
    report.deltas.push_back(std::move(delta));
  }
  for (const auto& [key, value] : fresh) {
    if (value.is_number() && obs::FindKey(baseline, key) == nullptr) {
      report.notes.push_back("key `" + key + "` new in fresh run");
    }
  }
  return report;
}

Result<std::string> HistoryRecord(const std::string& fresh_text,
                                  const Report& report) {
  HALK_ASSIGN_OR_RETURN(obs::JsonObject fresh,
                        obs::ParseJsonLine(fresh_text));
  const obs::JsonValue* name = obs::FindKey(fresh, "bench");
  if (name == nullptr || !name->is_string()) {
    return Status::InvalidArgument("missing \"bench\" key");
  }
  auto header_string = [&fresh](const char* key) {
    const obs::JsonValue* value = obs::FindKey(fresh, key);
    return value != nullptr && value->is_string() ? value->string_value
                                                  : std::string();
  };
  obs::JsonLineBuilder line;
  line.Str("record", "bench_diff")
      .Str("bench", name->string_value)
      .Str("git_sha", header_string("git_sha"))
      .Str("timestamp", header_string("timestamp"))
      .Bool("ok", report.ok);
  for (const KeyDelta& delta : report.deltas) {
    line.Num("d_" + delta.key, delta.relative);
  }
  return line.Finish();
}

}  // namespace halk::benchdiff
