// halk_store: offline tooling for out-of-core embedding-store snapshots
// (src/store/, docs/storage.md).
//
//   halk_store inspect <snapshot-dir>
//       Print the manifest and per-shard-file geometry. Maps the files but
//       reads only headers — safe on stores far larger than RAM.
//   halk_store verify <snapshot-dir>
//       Re-verify every column-block checksum and the params blob. Faults
//       in the whole table; run offline, not at serve time.
//   halk_store from-checkpoint <ckpt.bin> <snapshot-dir> [--shards N]
//       Convert a legacy --checkpoint blob into a store snapshot.
//   halk_store to-checkpoint <snapshot-dir> <ckpt.bin>
//       Convert a snapshot (with params) back into a legacy blob,
//       byte-identical to what SaveCheckpoint of the same model writes.
//
// Exit codes: 0 success, 1 verification/conversion failure, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "store/convert.h"
#include "store/format.h"
#include "store/shard_file.h"
#include "store/snapshot.h"
#include "store/store.h"
#include "store/writer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: halk_store <command> ...\n"
               "  inspect <snapshot-dir>\n"
               "  verify <snapshot-dir>\n"
               "  from-checkpoint <ckpt.bin> <snapshot-dir> [--shards N]\n"
               "  to-checkpoint <snapshot-dir> <ckpt.bin>\n");
  return 2;
}

int Fail(const halk::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Inspect(const std::string& dir) {
  halk::store::EmbeddingStore::OpenOptions options;
  options.verify_checksums = false;  // headers only; stay out of core
  auto store = halk::store::EmbeddingStore::Open(dir, options);
  if (!store.ok()) return Fail(store.status());
  const halk::store::StoreSnapshot& snap = (*store)->snapshot();
  std::printf("snapshot    %s\n", dir.c_str());
  std::printf("model       %s\n", snap.model_name.c_str());
  std::printf("entities    %lld\n",
              static_cast<long long>(snap.config.num_entities));
  std::printf("relations   %lld\n",
              static_cast<long long>(snap.config.num_relations));
  std::printf("dim         %lld\n", static_cast<long long>(snap.config.dim));
  std::printf("params      %s\n", snap.has_params ? "yes" : "no");
  std::printf("table_mib   %.1f\n",
              static_cast<double>((*store)->MappedBytes()) / (1024 * 1024));
  std::printf("shard_files %lld\n",
              static_cast<long long>((*store)->num_shard_files()));
  for (size_t i = 0; i < snap.shards.size(); ++i) {
    const halk::store::SnapshotShardEntry& entry = snap.shards[i];
    const halk::store::ShardView view =
        (*store)->view(static_cast<int64_t>(i));
    std::printf("  %-24s entities [%lld, %lld)  %zu bytes  0x%016llx\n",
                entry.file.c_str(),
                static_cast<long long>(entry.entity_begin),
                static_cast<long long>(entry.entity_end),
                view.mapped_bytes(),
                static_cast<unsigned long long>(entry.header_checksum));
  }
  return 0;
}

int Verify(const std::string& dir) {
  halk::store::EmbeddingStore::OpenOptions options;
  options.verify_checksums = false;  // VerifyChecksums below reports per file
  auto store = halk::store::EmbeddingStore::Open(dir, options);
  if (!store.ok()) return Fail(store.status());
  if (halk::Status s = (*store)->VerifyChecksums(); !s.ok()) return Fail(s);
  const halk::store::StoreSnapshot& snap = (*store)->snapshot();
  if (snap.has_params) {
    std::string name;
    halk::core::ModelConfig config;
    std::vector<std::vector<float>> tensors;
    uint64_t checksum = 0;
    halk::Status s = halk::store::ReadParamsBlob(
        dir + "/" + halk::store::kParamsFileName, &name, &config, &tensors,
        &checksum);
    if (!s.ok()) return Fail(s);
    if (checksum != snap.params_checksum) {
      return Fail(halk::Status::ParseError(
          "params blob checksum disagrees with manifest"));
    }
  }
  std::printf("ok: %lld shard files, %zu bytes, params %s\n",
              static_cast<long long>((*store)->num_shard_files()),
              (*store)->MappedBytes(), snap.has_params ? "ok" : "absent");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "inspect") {
    if (argc != 3) return Usage();
    return Inspect(argv[2]);
  }
  if (command == "verify") {
    if (argc != 3) return Usage();
    return Verify(argv[2]);
  }
  if (command == "from-checkpoint") {
    if (argc < 4) return Usage();
    long long shards = 1;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
        shards = std::atoll(argv[++i]);
      } else {
        return Usage();
      }
    }
    if (shards <= 0) {
      std::fprintf(stderr, "error: --shards must be > 0\n");
      return 2;
    }
    halk::Status s = halk::store::ConvertCheckpointToSnapshot(
        argv[2], argv[3], static_cast<int64_t>(shards));
    if (!s.ok()) return Fail(s);
    std::printf("wrote snapshot %s (%lld shard files)\n", argv[3], shards);
    return 0;
  }
  if (command == "to-checkpoint") {
    if (argc != 4) return Usage();
    halk::Status s = halk::store::ConvertSnapshotToCheckpoint(argv[2],
                                                              argv[3]);
    if (!s.ok()) return Fail(s);
    std::printf("wrote checkpoint %s\n", argv[3]);
    return 0;
  }
  return Usage();
}
