#!/bin/sh
# CLI contract for halk_store: usage errors exit 2, verification and
# conversion failures exit 1 with a diagnostic on stderr. The happy-path
# blob <-> snapshot round trip is pinned byte-exactly by
# tests/store/store_test.cc (BlobToSnapshotToBlobIsByteIdentical).
set -u
HALK_STORE="$1"
TMP="${TMPDIR:-/tmp}/halk_store_cli_$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT
fail() { echo "FAIL: $1" >&2; exit 1; }

"$HALK_STORE" >/dev/null 2>&1
[ $? -eq 2 ] || fail "no arguments should exit 2"

"$HALK_STORE" frobnicate x >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown command should exit 2"

"$HALK_STORE" verify "$TMP/no_such_snapshot" >/dev/null 2>"$TMP/err"
[ $? -eq 1 ] || fail "verify of missing snapshot should exit 1"
grep -q "error:" "$TMP/err" || fail "verify should print a diagnostic"

printf 'not a checkpoint blob' > "$TMP/garbage.bin"
"$HALK_STORE" from-checkpoint "$TMP/garbage.bin" "$TMP/snap" >/dev/null 2>"$TMP/err"
[ $? -eq 1 ] || fail "conversion of garbage blob should exit 1"
grep -q "error:" "$TMP/err" || fail "conversion should print a diagnostic"

"$HALK_STORE" from-checkpoint "$TMP/garbage.bin" "$TMP/snap" --shards 0 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--shards 0 should exit 2"

echo "PASS"
