// HaLk as a pruning front-end for subgraph matching (Sec. IV-D): a trained
// model restricts the data graph to top-k candidates per query variable,
// and the G-Finder-style matcher runs on the induced subgraph — much
// faster, with a small accuracy sacrifice.
//
//   $ ./examples/pruned_matching

#include <algorithm>
#include <cstdio>

#include "halk/halk.h"

int main() {
  using namespace halk;

  kg::Dataset dataset = kg::MakeNellLike(13);
  std::printf("%s: %lld entities, %lld relations, %lld test triples\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.test.num_entities()),
              static_cast<long long>(dataset.test.num_relations()),
              static_cast<long long>(dataset.test.num_triples()));

  core::ModelConfig config;
  config.num_entities = dataset.train.num_entities();
  config.num_relations = dataset.train.num_relations();
  config.dim = 16;
  config.hidden = 32;
  config.seed = 31;
  core::HalkModel model(config, nullptr);
  core::TrainerOptions topt;
  topt.steps = 1500;
  topt.batch_size = 32;
  topt.num_negatives = 16;
  topt.learning_rate = 1e-2f;
  topt.queries_per_structure = 120;
  topt.structures = {query::StructureId::k1p, query::StructureId::k2p,
                     query::StructureId::k2i, query::StructureId::k3i};
  core::Trainer trainer(&model, &dataset.train, nullptr, topt);
  auto stats = trainer.Train();
  HALK_CHECK(stats.ok());
  std::printf("HaLk trained in %.1fs\n\n", stats->seconds);

  matching::SubgraphMatcher full_matcher(&dataset.test);
  matching::PrunedMatcher pruned_matcher(&model, &dataset.test,
                                         /*top_k=*/20);
  query::QuerySampler sampler(&dataset.test, 7);

  std::printf("%-8s %12s %12s %10s %10s\n", "query", "full(ms)",
              "pruned(ms)", "full-acc", "pruned-acc");
  for (query::StructureId s : query::PruningStructures()) {
    double full_ms = 0.0;
    double pruned_ms = 0.0;
    double full_acc = 0.0;
    double pruned_acc = 0.0;
    const int kQueries = 10;
    for (int i = 0; i < kQueries; ++i) {
      auto q = sampler.Sample(s);
      HALK_CHECK(q.ok());
      matching::MatchStats fs;
      matching::MatchStats ps;
      auto fr = full_matcher.Match(q->graph, &fs);
      auto pr = pruned_matcher.Match(q->graph, &ps);
      HALK_CHECK(fr.ok());
      HALK_CHECK(pr.ok());
      full_ms += fs.millis;
      pruned_ms += ps.millis;
      auto recall = [&](const std::vector<int64_t>& got) {
        int64_t hit = 0;
        for (int64_t a : q->answers) {
          hit += std::binary_search(got.begin(), got.end(), a);
        }
        return static_cast<double>(hit) /
               static_cast<double>(q->answers.size());
      };
      full_acc += recall(*fr);
      pruned_acc += recall(*pr);
    }
    std::printf("%-8s %12.2f %12.2f %9.1f%% %9.1f%%\n",
                query::StructureName(s).c_str(), full_ms / kQueries,
                pruned_ms / kQueries, 100.0 * full_acc / kQueries,
                100.0 * pruned_acc / kQueries);
  }
  return 0;
}
