// halk_cli — command-line front-end tying the whole library together:
//
//   halk_cli generate --dataset nell --out kg.tsv
//       Generate a synthetic benchmark KG and write its triples as TSV.
//
//   halk_cli train --kg kg.tsv --model halk --steps 2000 --ckpt model.bin
//       Train a model (halk / cone / newlook / mlpmix / halk-v*) on a TSV
//       KG and write a checkpoint.
//
//   halk_cli query --kg kg.tsv --ckpt model.bin --sparql "SELECT ?x ..."
//       Answer a SPARQL query: exact executor answers + neural top-k.
//
//   halk_cli eval --kg kg.tsv --ckpt model.bin --structure 2i --queries 50
//       Evaluate MRR / Hits@k for one query structure.
//
// All subcommands accept --seed and print deterministic results.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "halk/halk.h"

namespace {

using namespace halk;

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage: halk_cli <generate|train|query|eval> [--flag value]...\n"
               "  generate --dataset fb15k|fb237|nell [--seed N] --out FILE\n"
               "  train    --kg FILE [--model NAME] [--steps N] [--seed N] "
               "--ckpt FILE\n"
               "  query    --kg FILE --ckpt FILE --sparql TEXT [--topk N]\n"
               "  eval     --kg FILE --ckpt FILE [--structure S] "
               "[--queries N]\n");
  return 2;
}

core::ModelConfig ConfigFor(const kg::KnowledgeGraph& graph, uint64_t seed) {
  core::ModelConfig config;
  config.num_entities = graph.num_entities();
  config.num_relations = graph.num_relations();
  config.dim = 32;
  config.hidden = 64;
  config.seed = seed;
  return config;
}

int Generate(const std::map<std::string, std::string>& flags) {
  const std::string which = FlagOr(flags, "dataset", "nell");
  const uint64_t seed = std::stoull(FlagOr(flags, "seed", "42"));
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return Usage();
  kg::Dataset ds = which == "fb15k"  ? kg::MakeFb15kLike(seed)
                   : which == "fb237" ? kg::MakeFb237Like(seed)
                                      : kg::MakeNellLike(seed);
  Status s = kg::SaveTriplesTsv(ds.test, out);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s: wrote %lld triples (%lld entities, %lld relations) to %s\n",
              ds.name.c_str(), static_cast<long long>(ds.test.num_triples()),
              static_cast<long long>(ds.test.num_entities()),
              static_cast<long long>(ds.test.num_relations()), out.c_str());
  return 0;
}

Result<kg::KnowledgeGraph> LoadKg(const std::string& path) {
  kg::KnowledgeGraph graph;
  HALK_RETURN_NOT_OK(kg::LoadTriplesTsv(path, &graph));
  graph.Finalize();
  return graph;
}

int Train(const std::map<std::string, std::string>& flags) {
  const std::string kg_path = FlagOr(flags, "kg", "");
  const std::string ckpt = FlagOr(flags, "ckpt", "");
  if (kg_path.empty() || ckpt.empty()) return Usage();
  const uint64_t seed = std::stoull(FlagOr(flags, "seed", "7"));
  auto graph = LoadKg(kg_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto model = baselines::CreateModel(FlagOr(flags, "model", "halk"),
                                      ConfigFor(*graph, seed), nullptr);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  core::TrainerOptions opt;
  opt.steps = std::stoi(FlagOr(flags, "steps", "2000"));
  opt.batch_size = 64;
  opt.num_negatives = 24;
  opt.learning_rate = 1e-2f;
  opt.queries_per_structure = 400;
  opt.seed = seed;
  opt.log_every = opt.steps / 10;
  core::Trainer trainer(model->get(), &*graph, nullptr, opt);
  auto stats = trainer.Train();
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %s for %lld steps in %.1fs (final loss %.3f)\n",
              (*model)->name().c_str(), static_cast<long long>(stats->steps),
              stats->seconds, stats->final_loss);
  Status s = core::SaveCheckpoint(**model, ckpt);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", ckpt.c_str());
  return 0;
}

Result<std::unique_ptr<core::QueryModel>> LoadModel(
    const kg::KnowledgeGraph& graph,
    const std::map<std::string, std::string>& flags) {
  const std::string ckpt = FlagOr(flags, "ckpt", "");
  HALK_ASSIGN_OR_RETURN(
      std::unique_ptr<core::QueryModel> model,
      baselines::CreateModel(FlagOr(flags, "model", "halk"),
                             ConfigFor(graph, 7), nullptr));
  HALK_RETURN_NOT_OK(core::LoadCheckpoint(model.get(), ckpt));
  return model;
}

int Query(const std::map<std::string, std::string>& flags) {
  const std::string kg_path = FlagOr(flags, "kg", "");
  const std::string text = FlagOr(flags, "sparql", "");
  if (kg_path.empty() || text.empty()) return Usage();
  auto graph = LoadKg(kg_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto compiled = sparql::CompileSparql(text, *graph);
  if (!compiled.ok()) {
    std::fprintf(stderr, "error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("computation graph: %s\n", compiled->ToString().c_str());

  auto exact = query::ExecuteQuery(*compiled, *graph);
  if (exact.ok()) {
    std::printf("exact answers (%zu):", exact->size());
    size_t shown = 0;
    for (int64_t e : *exact) {
      if (shown++ == 20) {
        std::printf(" ...");
        break;
      }
      std::printf(" %s", graph->entities().Name(e).c_str());
    }
    std::printf("\n");
  }

  auto model = LoadModel(*graph, flags);
  if (!model.ok()) {
    std::fprintf(stderr, "note: no neural answers (%s)\n",
                 model.status().ToString().c_str());
    return exact.ok() ? 0 : 1;
  }
  core::Evaluator evaluator(model->get());
  const int64_t k = std::stoll(FlagOr(flags, "topk", "10"));
  std::printf("neural top-%lld:", static_cast<long long>(k));
  for (int64_t e : evaluator.TopK(*compiled, k)) {
    std::printf(" %s", graph->entities().Name(e).c_str());
  }
  std::printf("\n");
  return 0;
}

int Eval(const std::map<std::string, std::string>& flags) {
  const std::string kg_path = FlagOr(flags, "kg", "");
  if (kg_path.empty()) return Usage();
  auto graph = LoadKg(kg_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto model = LoadModel(*graph, flags);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  auto structure =
      query::StructureFromName(FlagOr(flags, "structure", "2i"));
  if (!structure.ok()) {
    std::fprintf(stderr, "error: %s\n", structure.status().ToString().c_str());
    return 1;
  }
  query::QuerySampler sampler(&*graph,
                              std::stoull(FlagOr(flags, "seed", "99")));
  auto queries =
      sampler.SampleMany(*structure, std::stoi(FlagOr(flags, "queries", "50")));
  if (!queries.ok()) {
    std::fprintf(stderr, "error: %s\n", queries.status().ToString().c_str());
    return 1;
  }
  core::Evaluator evaluator(model->get());
  core::Metrics m = evaluator.Evaluate(*queries);
  std::printf("%s on %lld %s queries: MRR %.3f  Hits@1 %.3f  Hits@3 %.3f  "
              "Hits@10 %.3f\n",
              (*model)->name().c_str(),
              static_cast<long long>(m.num_queries),
              query::StructureName(*structure).c_str(), m.mrr, m.hits1,
              m.hits3, m.hits10);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return Generate(flags);
  if (command == "train") return Train(flags);
  if (command == "query") return Query(flags);
  if (command == "eval") return Eval(flags);
  return Usage();
}
