// The paper's motivating scenario (Fig. 1): "What are the films directed
// by Oscar-winning American directors?" — a 2i+projection logical query on
// a movie knowledge graph, answered both exactly (symbolic executor) and
// neurally (HaLk on an *incomplete* graph, recovering held-out edges).
//
//   $ ./examples/movie_recommendation

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "halk/halk.h"

namespace {

// A hand-written movie KG plus procedurally generated bulk so the model
// has enough structure to learn from. `held_out` edges go only to the full
// (test) graph, simulating KG incompleteness.
void BuildMovieKg(halk::kg::KnowledgeGraph* train,
                  halk::kg::KnowledgeGraph* full) {
  using halk::kg::KnowledgeGraph;
  auto add = [&](const std::string& h, const std::string& r,
                 const std::string& t, bool held_out = false) {
    full->AddTriple(h, r, t);
    if (!held_out) {
      // Shared vocabulary: ids must exist; copy the triple by id.
      train->AddTriple(h, r, t);
    }
  };

  // Fig. 1 core.
  add("Oscar", "won_by", "Frank_Borzage");
  add("Oscar", "won_by", "Lewis_Milestone");
  add("Oscar", "won_by", "Emil_Jannings");
  add("USA", "citizen_of_inv", "Frank_Borzage");
  add("USA", "citizen_of_inv", "Lewis_Milestone");
  add("Germany", "citizen_of_inv", "Emil_Jannings");
  add("Frank_Borzage", "directed", "Seventh_Heaven");
  add("Frank_Borzage", "directed", "Street_Angel", /*held_out=*/true);
  add("Lewis_Milestone", "directed", "Two_Arabian_Knights");
  add("Emil_Jannings", "directed", "The_Way_Of_All_Flesh");

  // Procedural bulk: directors, films, awards, genres.
  halk::Rng rng(11);
  std::vector<std::string> directors;
  for (int i = 0; i < 40; ++i) {
    directors.push_back("director_" + std::to_string(i));
    const bool american = rng.Bernoulli(0.5);
    add(american ? "USA" : "France", "citizen_of_inv", directors.back());
    if (rng.Bernoulli(0.3)) add("Oscar", "won_by", directors.back());
  }
  for (int i = 0; i < 160; ++i) {
    const std::string film = "film_" + std::to_string(i);
    const std::string& d =
        directors[static_cast<size_t>(rng.UniformInt(directors.size()))];
    add(d, "directed", film, /*held_out=*/rng.Bernoulli(0.15));
    add(film, "genre", rng.Bernoulli(0.5) ? "Drama" : "Comedy");
    if (rng.Bernoulli(0.2)) add("Festival", "screened", film);
  }
  train->Finalize();
  full->Finalize();
}

}  // namespace

int main() {
  using namespace halk;

  kg::KnowledgeGraph train;
  kg::KnowledgeGraph full = kg::KnowledgeGraph::WithSharedVocabulary(train);
  BuildMovieKg(&train, &full);
  std::printf("movie KG: %lld entities, train %lld / full %lld triples\n",
              static_cast<long long>(train.num_entities()),
              static_cast<long long>(train.num_triples()),
              static_cast<long long>(full.num_triples()));

  // Fig. 1b computation graph, built by hand against the vocabulary.
  const int64_t oscar = *train.entities().Lookup("Oscar");
  const int64_t usa = *train.entities().Lookup("USA");
  const int64_t won_by = *train.relations().Lookup("won_by");
  const int64_t citizen = *train.relations().Lookup("citizen_of_inv");
  const int64_t directed = *train.relations().Lookup("directed");

  query::QueryGraph q;
  int winners = q.AddProjection(q.AddAnchor(oscar), won_by);
  int americans = q.AddProjection(q.AddAnchor(usa), citizen);
  int directors = q.AddIntersection({winners, americans});
  q.SetTarget(q.AddProjection(directors, directed));
  std::printf("query: %s\n", q.ToString().c_str());

  // Ground truth on the FULL graph (what a complete KG would answer).
  auto truth = query::ExecuteQuery(q, full);
  HALK_CHECK(truth.ok());
  std::printf("exact answers on the complete graph:\n");
  for (int64_t e : *truth) {
    std::printf("  %s\n", full.entities().Name(e).c_str());
  }

  // The symbolic executor on the INCOMPLETE graph misses held-out films.
  auto observed = query::ExecuteQuery(q, train);
  HALK_CHECK(observed.ok());
  std::printf("symbolic matching on the incomplete graph finds %zu/%zu\n",
              observed->size(), truth->size());

  // Train HaLk on the incomplete graph.
  Rng rng(3);
  kg::NodeGrouping grouping =
      kg::NodeGrouping::Random(train.num_entities(), 12, &rng);
  grouping.BuildAdjacency(train);
  core::ModelConfig config;
  config.num_entities = train.num_entities();
  config.num_relations = train.num_relations();
  config.dim = 16;
  config.hidden = 32;
  config.seed = 21;
  core::HalkModel model(config, &grouping);
  core::TrainerOptions topt;
  topt.steps = 1500;
  topt.batch_size = 32;
  topt.num_negatives = 16;
  topt.learning_rate = 1e-2f;
  topt.queries_per_structure = 120;
  topt.structures = {query::StructureId::k1p, query::StructureId::k2p,
                     query::StructureId::k2i, query::StructureId::k3i};
  core::Trainer trainer(&model, &train, &grouping, topt);
  auto stats = trainer.Train();
  HALK_CHECK(stats.ok());
  std::printf("HaLk trained in %.1fs (loss %.3f)\n", stats->seconds,
              stats->final_loss);

  // Neural answers: ranked by arc distance, robust to the missing edges.
  core::Evaluator evaluator(&model);
  auto top = evaluator.TopK(q, 8);
  std::printf("HaLk top-8 recommendations:\n");
  for (int64_t e : top) {
    const bool correct =
        std::binary_search(truth->begin(), truth->end(), e);
    std::printf("  %-24s %s\n", full.entities().Name(e).c_str(),
                correct ? "<- true answer" : "");
  }
  return 0;
}
