#!/bin/sh
# Exercises sparql_endpoint's --store restart contract end to end:
#   1. --store and --checkpoint together are a usage error;
#   2. a missing snapshot trains from scratch and writes one;
#   3. a rerun serves straight out of the snapshot and skips training;
#   4. both runs rank the demo traffic identically (the store-backed scan
#      is bit-identical to the in-RAM table);
#   5. a corrupted shard file must produce a clean stderr diagnostic and a
#      nonzero exit (never silently retrain over the snapshot).
# Usage: sparql_endpoint_store_test.sh <path-to-sparql_endpoint>
set -eu

BIN="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

if "$BIN" --store "$TMP/snap" --checkpoint "$TMP/model.bin" < /dev/null \
    > "$TMP/out.txt" 2> "$TMP/err.txt"; then
  echo "FAIL: expected nonzero exit for --store with --checkpoint" >&2
  exit 1
fi
grep -q "mutually exclusive" "$TMP/err.txt" || {
  echo "FAIL: no mutual-exclusion diagnostic on stderr" >&2
  cat "$TMP/err.txt" >&2
  exit 1
}

"$BIN" --store "$TMP/snap" < /dev/null > "$TMP/first.txt" 2>&1
grep -q "training from scratch" "$TMP/first.txt"
grep -q "wrote store snapshot to" "$TMP/first.txt"
ls "$TMP/snap"/MANIFEST.halksnap "$TMP/snap"/entities-*.halkstore > /dev/null

"$BIN" --store "$TMP/snap" < /dev/null > "$TMP/second.txt" 2>&1
grep -q "serving out of store snapshot" "$TMP/second.txt"

# The served rankings (every "top-3..." line) must match between the
# in-RAM run that wrote the snapshot and the store-backed rerun.
grep '^top-3' "$TMP/first.txt" > "$TMP/first_topk.txt"
grep '^top-3' "$TMP/second.txt" > "$TMP/second_topk.txt"
cmp -s "$TMP/first_topk.txt" "$TMP/second_topk.txt" || {
  echo "FAIL: store-backed rankings differ from in-RAM rankings" >&2
  diff "$TMP/first_topk.txt" "$TMP/second_topk.txt" >&2 || true
  exit 1
}

# Flip the last byte of a shard file (inside the final column block, whose
# checksum covers its zero padding): the open-time verification must catch
# it and the endpoint must refuse to serve or retrain.
SHARD="$(ls "$TMP/snap"/entities-*.halkstore | head -n 1)"
printf '\377' | dd of="$SHARD" bs=1 seek=$(( $(wc -c < "$SHARD") - 1 )) \
  conv=notrunc 2> /dev/null
if "$BIN" --store "$TMP/snap" < /dev/null \
    > "$TMP/out.txt" 2> "$TMP/err.txt"; then
  echo "FAIL: expected nonzero exit for a corrupted shard file" >&2
  exit 1
fi
grep -q "cannot open snapshot" "$TMP/err.txt" || {
  echo "FAIL: no diagnostic on stderr for a corrupted shard file" >&2
  cat "$TMP/err.txt" >&2
  exit 1
}

echo PASS
