// SPARQL front-end demo (Sec. IV-F, Fig. 7): SPARQL text is compiled by
// the query Adaptor into a HaLk computation graph, then answered both by
// the exact executor and by a trained HaLk model behind the concurrent
// QueryServer — the same serving engine a production endpoint would sit
// on, with micro-batching, answer caching, sharded ranking, and latency
// metrics.
//
//   $ ./examples/sparql_endpoint
//   $ ./examples/sparql_endpoint --checkpoint /tmp/sparql_model.bin
//   $ ./examples/sparql_endpoint --store /tmp/sparql_snapshot
//   $ ./examples/sparql_endpoint --trace-out /tmp/endpoint_trace.json
//   $ ./examples/sparql_endpoint --journal-out /tmp/train_journal.jsonl \
//                                --profile-out /tmp/endpoint_flame.txt
//   $ ./examples/sparql_endpoint --http-port 0 --serve-journal-out /tmp/s.jsonl
//
// With --checkpoint, the model is restored from the file when it exists
// (skipping training entirely — the restart path of a real endpoint) and
// trained-then-saved there when it does not. A checkpoint that exists but
// cannot be restored (corrupt, wrong model, checksum mismatch) is a fatal
// configuration error: the endpoint prints the diagnostic to stderr and
// exits nonzero rather than silently training a fresh model over it.
//
// --store is the same restart contract against a store snapshot directory
// (docs/storage.md) instead of the monolithic blob: when the directory
// holds a snapshot, the endpoint serves straight out of the mmap'd shard
// files — the entity table is never copied into RAM — and when it does
// not, the endpoint trains and writes a snapshot there. It supersedes
// --checkpoint for new deployments (`halk_store convert` migrates old
// blobs); the two flags are mutually exclusive. With
// --trace-out, the trace of the last served query is written as
// chrome://tracing JSON on exit. With --journal-out, the training loop
// appends one JSONL record per step (loss, grad norm, tape op counts) to
// the given path; with --profile-out, the global CPU profiler is enabled
// for the whole process and a collapsed-stack flamegraph is written on
// exit (feed it to flamegraph.pl or speedscope).
//
// --http-port N starts the embedded telemetry server (docs/observability.md)
// on 127.0.0.1:N — 0 binds an ephemeral port; the bound port is printed as
// "telemetry listening on 127.0.0.1:PORT" so scripts can scrape /metrics,
// /healthz, /readyz, /traces, /profile, /slo, and /queryz (fingerprint-
// keyed query statistics). --serve-journal-out appends one JSONL audit
// record per served request (fingerprint, status, latency, coverage,
// cache hit, trace id, plan shape) to the given path.
//
// After the scripted demo the endpoint drops into a line REPL on stdin
// (EOF exits immediately, so piping from /dev/null is script-safe):
// SPARQL queries are served live; dot-commands inspect the engine:
//   .metrics   plain-text metrics dump
//   .prom      Prometheus text exposition
//   .explain <sparql>   planner schedule for a query, without serving it
//   .analyze <sparql>   EXPLAIN ANALYZE: executes the plan and renders
//                       estimated vs. sampled-actual rows with q-errors
//   .queryz    fingerprint-keyed query statistics (top 10, JSON)
//   .trace     chrome://tracing JSON of the last served query
//   .slow      slow-query log (fingerprint, hits, worst latency)
//   .health    per-replica shard health
//   .profile   collapsed-stack CPU profile (needs --profile-out)
//   .quit      exit

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "halk/halk.h"
#include "net/http_server.h"
#include "net/telemetry.h"
#include "obs/process_metrics.h"
#include "obs/slo_tracker.h"
#include "store/convert.h"
#include "store/store.h"
#include "store/writer.h"

namespace {

// A small academic-domain KG with inverse edges for subject-variable
// patterns.
halk::kg::KnowledgeGraph BuildKg() {
  halk::kg::KnowledgeGraph g;
  auto both = [&g](const std::string& h, const std::string& r,
                   const std::string& t) {
    g.AddTriple(h, r, t);
    g.AddTriple(t, r + "_inv", h);
  };
  both("ACM", "awarded", "alice");
  both("ACM", "awarded", "bob");
  both("IEEE", "awarded", "carol");
  both("alice", "works_at", "MIT");
  both("bob", "works_at", "MIT");
  both("carol", "works_at", "ETH");
  both("alice", "authored", "paper_kg");
  both("alice", "authored", "paper_ml");
  both("bob", "authored", "paper_db");
  both("carol", "authored", "paper_kg");
  both("dave", "authored", "paper_sys");
  both("dave", "works_at", "MIT");
  both("paper_kg", "cites", "paper_db");
  both("paper_ml", "cites", "paper_kg");
  g.Finalize();
  return g;
}

void Run(const halk::kg::KnowledgeGraph& kg, const std::string& title,
         const std::string& sparql) {
  std::printf("\n--- %s ---\n%s\n", title.c_str(), sparql.c_str());
  auto graph = halk::sparql::CompileSparql(sparql, kg);
  if (!graph.ok()) {
    std::printf("adaptor error: %s\n", graph.status().ToString().c_str());
    return;
  }
  std::printf("computation graph: %s\n", graph->ToString().c_str());
  auto answers = halk::query::ExecuteQuery(*graph, kg);
  HALK_CHECK(answers.ok());
  std::printf("answers:");
  for (int64_t e : *answers) {
    std::printf(" %s", kg.entities().Name(e).c_str());
  }
  std::printf("\n");
}

void WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace halk;
  std::string checkpoint_path;
  std::string store_dir;
  std::string trace_out_path;
  std::string journal_out_path;
  std::string profile_out_path;
  std::string serve_journal_path;
  int http_port = -1;  // -1 = telemetry server off; 0 = ephemeral port
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--checkpoint") == 0) {
      checkpoint_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--store") == 0) {
      store_dir = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_out_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--journal-out") == 0) {
      journal_out_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--profile-out") == 0) {
      profile_out_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--serve-journal-out") == 0) {
      serve_journal_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--http-port") == 0) {
      http_port = std::atoi(argv[i + 1]);
    }
  }
  if (!checkpoint_path.empty() && !store_dir.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint and --store are mutually exclusive "
                 "(use halk_store convert to migrate a blob to a snapshot)\n");
    return 1;
  }
  if (!profile_out_path.empty()) {
    obs::Profiler::Global().set_enabled(true);
    std::printf("CPU profiler enabled, flamegraph -> %s\n",
                profile_out_path.c_str());
  }
  kg::KnowledgeGraph kg = BuildKg();
  std::printf("academic KG: %lld entities, %lld relations, %lld triples\n",
              static_cast<long long>(kg.num_entities()),
              static_cast<long long>(kg.num_relations()),
              static_cast<long long>(kg.num_triples()));

  Run(kg, "projection + intersection (authors at MIT with an ACM award)",
      "SELECT ?a WHERE { ACM awarded ?a . ?a works_at MIT . }");

  Run(kg, "difference via MINUS (papers by award winners, minus cited ones)",
      "SELECT ?p WHERE { ACM awarded ?a . ?a authored ?p . "
      "MINUS { paper_ml cites ?p . } }");

  Run(kg, "negation via FILTER NOT EXISTS",
      "SELECT ?p WHERE { alice authored ?p . "
      "FILTER NOT EXISTS { paper_ml cites ?p . } }");

  Run(kg, "union of branches",
      "SELECT ?a WHERE { { ACM awarded ?a . } UNION { IEEE awarded ?a . } }");

  Run(kg, "multi-hop with inverse traversal (who wrote what MIT people cite)",
      "SELECT ?q WHERE { ?a works_at MIT . ?a authored ?p . ?p cites ?q }");

  // Neural execution of the first query with a briefly trained model.
  std::printf("\n--- neural execution (HaLk as the query executor) ---\n");
  Rng rng(5);
  kg::NodeGrouping grouping =
      kg::NodeGrouping::Random(kg.num_entities(), 4, &rng);
  grouping.BuildAdjacency(kg);
  core::ModelConfig config;
  config.num_entities = kg.num_entities();
  config.num_relations = kg.num_relations();
  config.dim = 8;
  config.hidden = 16;
  config.seed = 17;
  core::HalkModel model(config, &grouping);
  core::HalkModel* serving_model = &model;
  // Store-backed restore: the snapshot's shard files stay mmap'd for the
  // model's whole lifetime, so both outlive the QueryServer below.
  std::unique_ptr<store::EmbeddingStore> embedding_store;
  std::unique_ptr<core::HalkModel> store_model;
  bool restored = false;
  if (!store_dir.empty()) {
    auto opened = store::EmbeddingStore::Open(store_dir, {});
    if (opened.ok()) {
      embedding_store = std::move(*opened);
      auto served = store::OpenServingModel(*embedding_store, &grouping);
      if (!served.ok()) {
        std::fprintf(stderr, "error: cannot serve snapshot %s: %s\n",
                     store_dir.c_str(), served.status().ToString().c_str());
        return 1;
      }
      store_model = std::move(*served);
      serving_model = store_model.get();
      std::printf("serving out of store snapshot %s (%lld entities mapped, "
                  "not loaded), skipping training\n",
                  store_dir.c_str(),
                  static_cast<long long>(embedding_store->num_entities()));
      restored = true;
    } else if (opened.status().code() == StatusCode::kIOError) {
      // No manifest yet (first run): train and snapshot below.
      std::printf("no snapshot at %s (%s), training from scratch\n",
                  store_dir.c_str(), opened.status().ToString().c_str());
    } else {
      // A manifest exists but the snapshot is unusable (corrupt shard
      // file, checksum mismatch, bad manifest). Same contract as a bad
      // --checkpoint: refuse rather than overwrite.
      std::fprintf(stderr,
                   "error: cannot open snapshot %s: %s\n"
                   "(delete the directory or point --store elsewhere to "
                   "train from scratch)\n",
                   store_dir.c_str(), opened.status().ToString().c_str());
      return 1;
    }
  }
  if (!checkpoint_path.empty()) {
    const Status loaded = core::LoadCheckpoint(&model, checkpoint_path);
    if (loaded.ok()) {
      std::printf("restored model from %s, skipping training\n",
                  checkpoint_path.c_str());
      restored = true;
    } else if (loaded.code() == StatusCode::kIOError) {
      // The file is absent (first run): train and save below.
      std::printf("no checkpoint at %s (%s), training from scratch\n",
                  checkpoint_path.c_str(), loaded.ToString().c_str());
    } else {
      // The file exists but is not a usable checkpoint (bad magic,
      // truncation, checksum/config mismatch). Overwriting it with a
      // freshly trained model would destroy whatever it was — refuse.
      std::fprintf(stderr,
                   "error: cannot restore checkpoint %s: %s\n"
                   "(delete the file or point --checkpoint elsewhere to "
                   "train from scratch)\n",
                   checkpoint_path.c_str(), loaded.ToString().c_str());
      return 1;
    }
  }
  if (!restored) {
    core::TrainerOptions topt;
    topt.steps = 300;
    topt.batch_size = 8;
    topt.num_negatives = 6;
    topt.learning_rate = 1e-2f;
    topt.queries_per_structure = 40;
    topt.structures = {query::StructureId::k1p, query::StructureId::k2p,
                       query::StructureId::k2i};
    std::unique_ptr<obs::TrainJournal> journal;
    if (!journal_out_path.empty()) {
      auto opened = obs::TrainJournal::Open(journal_out_path);
      if (opened.ok()) {
        journal = std::move(*opened);
        topt.journal = journal.get();
      } else {
        std::printf("cannot open journal %s: %s\n", journal_out_path.c_str(),
                    opened.status().ToString().c_str());
      }
    }
    core::Trainer trainer(&model, &kg, &grouping, topt);
    HALK_CHECK(trainer.Train().ok());
    if (journal != nullptr) {
      std::printf("training journal: %lld records -> %s\n",
                  static_cast<long long>(journal->records_written()),
                  journal_out_path.c_str());
    }
    if (!checkpoint_path.empty()) {
      const Status saved = core::SaveCheckpoint(model, checkpoint_path);
      if (saved.ok()) {
        std::printf("saved model to %s\n", checkpoint_path.c_str());
      } else {
        std::printf("could not save checkpoint: %s\n",
                    saved.ToString().c_str());
      }
    }
    if (!store_dir.empty()) {
      const Status saved =
          store::WriteModelSnapshot(model, store_dir, /*num_shards=*/2);
      if (saved.ok()) {
        std::printf("wrote store snapshot to %s\n", store_dir.c_str());
      } else {
        std::printf("could not write snapshot: %s\n",
                    saved.ToString().c_str());
      }
    }
  }

  // Serve SPARQL traffic through the QueryServer: compiled queries are
  // submitted from the "frontend" thread and answered by worker threads,
  // with repeated queries short-circuited by the answer cache and ranking
  // scattered over two entity-table shards.
  obs::Tracer tracer;
  tracer.set_enabled(true);
  obs::SloTracker slo{obs::SloOptions{}};
  std::unique_ptr<obs::ServeJournal> serve_journal;
  if (!serve_journal_path.empty()) {
    auto opened = obs::ServeJournal::Open(serve_journal_path);
    if (opened.ok()) {
      serve_journal = std::move(*opened);
      std::printf("serving journal -> %s\n", serve_journal_path.c_str());
    } else {
      std::printf("cannot open serving journal %s: %s\n",
                  serve_journal_path.c_str(),
                  opened.status().ToString().c_str());
    }
  }
  serving::ServerOptions sopt;
  sopt.num_workers = 2;
  sopt.max_batch_size = 8;
  sopt.num_shards = 2;
  sopt.tracer = &tracer;
  sopt.slo = &slo;
  sopt.serve_journal = serve_journal.get();
  // A tiny threshold so the demo's slow-query log has entries to show.
  sopt.slow_query_threshold = std::chrono::microseconds(1);
  serving::QueryServer server(serving_model, &kg, sopt);
  slo.RegisterMetrics(server.metrics());
  obs::RegisterProcessMetrics(server.metrics());
  uint64_t last_trace_id = 0;

  // Embedded telemetry plane: /metrics, /healthz, /readyz, /traces,
  // /profile, /slo on loopback. Readiness additionally re-verifies the
  // store snapshot's checksums when serving out of one.
  net::HttpServer http_server{[&] {
    net::HttpServer::Options hopt;
    hopt.port = http_port < 0 ? 0 : http_port;
    return hopt;
  }()};
  if (http_port >= 0) {
    net::TelemetrySources sources;
    sources.metrics = server.metrics();
    sources.tracer = &tracer;
    sources.profiler = &obs::Profiler::Global();
    sources.slo = &slo;
    if (embedding_store != nullptr) {
      store::EmbeddingStore* store_ptr = embedding_store.get();
      sources.ready_check = [store_ptr] {
        return store_ptr->VerifyChecksums();
      };
    }
    if (server.query_stats() != nullptr) {
      obs::QueryStatsStore* stats = server.query_stats();
      sources.query_stats_json = [stats](size_t top_n) {
        return stats->ToJson(top_n);
      };
    }
    net::RegisterTelemetryEndpoints(&http_server, sources);
    const Status started = http_server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error: cannot start telemetry server: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    // Scripts parse this line to find the ephemeral port.
    std::printf("telemetry listening on 127.0.0.1:%d\n", http_server.port());
    std::fflush(stdout);
  }

  auto serve = [&](const std::string& sparql) {
    auto graph = sparql::CompileSparql(sparql, kg);
    if (!graph.ok()) {
      std::printf("adaptor error: %s\n", graph.status().ToString().c_str());
      return;
    }
    auto answer = server.Answer(*graph, 3);
    if (!answer.ok()) {
      std::printf("serving error: %s\n", answer.status().ToString().c_str());
      return;
    }
    if (answer->trace_id != 0) last_trace_id = answer->trace_id;
    std::printf("top-3%s:", answer->from_cache ? " (cached)" : "");
    for (int64_t e : answer->entities) {
      std::printf(" %s", kg.entities().Name(e).c_str());
    }
    std::printf("   <- %s\n", sparql.c_str());
  };

  const std::vector<std::string> traffic = {
      "SELECT ?a WHERE { ACM awarded ?a . ?a works_at MIT . }",
      "SELECT ?p WHERE { alice authored ?p . }",
      // Repeats below exercise the canonical-fingerprint cache.
      "SELECT ?a WHERE { ACM awarded ?a . ?a works_at MIT . }",
      "SELECT ?p WHERE { alice authored ?p . }",
      "SELECT ?a WHERE { ACM awarded ?a . ?a works_at MIT . }",
  };
  for (const std::string& sparql : traffic) serve(sparql);
  std::printf("\n--- serving metrics ---\n%s", server.DumpMetrics().c_str());

  // Interactive endpoint: SPARQL per line, dot-commands for inspection.
  // fgets returns null at EOF, so non-interactive runs fall straight
  // through.
  std::printf("\n--- interactive endpoint (SPARQL per line; .metrics .prom "
              ".explain <sparql> .analyze <sparql> .queryz .trace .slow "
              ".health .profile .quit) ---\n");
  char line[4096];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    const std::string input(Trim(line));
    if (input.empty()) continue;
    if (input == ".quit") break;
    if (input == ".metrics") {
      std::printf("%s", server.DumpMetrics().c_str());
    } else if (input == ".prom") {
      std::printf("%s", server.metrics()->DumpPrometheus().c_str());
    } else if (input.rfind(".explain", 0) == 0) {
      const std::string sparql(Trim(input.substr(8)));
      if (sparql.empty()) {
        std::printf("usage: .explain SELECT ?x WHERE { ... }\n");
        continue;
      }
      auto graph = sparql::CompileSparql(sparql, kg);
      if (!graph.ok()) {
        std::printf("adaptor error: %s\n", graph.status().ToString().c_str());
        continue;
      }
      auto text = server.Explain(*graph);
      if (!text.ok()) {
        std::printf("explain error: %s\n", text.status().ToString().c_str());
        continue;
      }
      std::printf("%s", text->c_str());
    } else if (input.rfind(".analyze", 0) == 0) {
      const std::string sparql(Trim(input.substr(8)));
      if (sparql.empty()) {
        std::printf("usage: .analyze SELECT ?x WHERE { ... }\n");
        continue;
      }
      auto graph = sparql::CompileSparql(sparql, kg);
      if (!graph.ok()) {
        std::printf("adaptor error: %s\n", graph.status().ToString().c_str());
        continue;
      }
      auto text = server.ExplainAnalyze(*graph);
      if (!text.ok()) {
        std::printf("analyze error: %s\n", text.status().ToString().c_str());
        continue;
      }
      std::printf("%s", text->c_str());
    } else if (input == ".queryz") {
      if (server.query_stats() == nullptr) {
        std::printf("query stats disabled (ServerOptions::analytics off)\n");
      } else {
        std::printf("%s\n", server.query_stats()->ToJson(10).c_str());
      }
    } else if (input == ".trace") {
      if (last_trace_id == 0) {
        std::printf("no trace captured yet\n");
      } else {
        std::printf("%s\n",
                    tracer.Collect(last_trace_id).ToChromeJson().c_str());
      }
    } else if (input == ".slow") {
      const auto entries = server.slow_query_log()->Entries();
      if (entries.empty()) std::printf("slow-query log is empty\n");
      for (const auto& entry : entries) {
        std::printf(
            "fingerprint=%s hits=%lld worst_us=%.1f spans=%zu trace=%llx\n",
            entry.fingerprint.c_str(), static_cast<long long>(entry.hits),
            static_cast<double>(entry.worst_ns) / 1e3,
            entry.trace.spans().size(),
            static_cast<unsigned long long>(entry.trace_id));
      }
    } else if (input == ".profile") {
      if (!obs::Profiler::Global().enabled()) {
        std::printf("profiler disabled (run with --profile-out)\n");
        continue;
      }
      const std::string collapsed =
          obs::Profiler::Global().Snapshot().ToCollapsed();
      if (collapsed.empty()) {
        std::printf("no profile samples yet\n");
      } else {
        std::printf("%s", collapsed.c_str());
      }
    } else if (input == ".health") {
      shard::ShardCoordinator* coordinator = server.coordinator();
      if (coordinator == nullptr) {
        std::printf("unsharded server: no replicas\n");
        continue;
      }
      for (int s = 0; s < coordinator->num_shards(); ++s) {
        for (int r = 0; r < coordinator->replication(); ++r) {
          std::printf("shard=%d replica=%d health=%s tasks=%lld\n", s, r,
                      shard::ReplicaHealthName(
                          coordinator->replica_health(s, r)),
                      static_cast<long long>(
                          coordinator->replica_tasks_served(s, r)));
        }
      }
    } else {
      serve(input);
    }
  }

  if (!trace_out_path.empty() && last_trace_id != 0) {
    WriteFileOrWarn(trace_out_path,
                    tracer.Collect(last_trace_id).ToChromeJson());
  }
  if (!profile_out_path.empty()) {
    WriteFileOrWarn(profile_out_path,
                    obs::Profiler::Global().Snapshot().ToCollapsed());
  }
  return 0;
}
