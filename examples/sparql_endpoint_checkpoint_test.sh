#!/bin/sh
# Exercises sparql_endpoint's --checkpoint failure modes end to end:
#   1. a corrupt checkpoint must produce a clean stderr diagnostic and a
#      nonzero exit (never silently retrain over the file);
#   2. a missing checkpoint trains from scratch and saves;
#   3. a rerun restores the saved checkpoint and skips training.
# Usage: sparql_endpoint_checkpoint_test.sh <path-to-sparql_endpoint>
set -eu

BIN="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

printf 'definitely not a checkpoint' > "$TMP/corrupt.bin"
if "$BIN" --checkpoint "$TMP/corrupt.bin" < /dev/null \
    > "$TMP/out.txt" 2> "$TMP/err.txt"; then
  echo "FAIL: expected nonzero exit for a corrupt checkpoint" >&2
  exit 1
fi
grep -q "cannot restore checkpoint" "$TMP/err.txt" || {
  echo "FAIL: no diagnostic on stderr for a corrupt checkpoint" >&2
  cat "$TMP/err.txt" >&2
  exit 1
}

"$BIN" --checkpoint "$TMP/model.bin" < /dev/null > "$TMP/first.txt" 2>&1
grep -q "training from scratch" "$TMP/first.txt"
grep -q "saved model to" "$TMP/first.txt"

"$BIN" --checkpoint "$TMP/model.bin" < /dev/null > "$TMP/second.txt" 2>&1
grep -q "restored model from" "$TMP/second.txt"

echo PASS
