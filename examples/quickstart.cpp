// Quickstart: build a knowledge graph, train HaLk, and answer logical
// queries — the minimal end-to-end tour of the public API.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "halk/halk.h"

int main() {
  using namespace halk;

  // 1. A synthetic knowledge graph with nested train/valid/test splits.
  kg::SyntheticKgOptions kg_options;
  kg_options.num_entities = 400;
  kg_options.num_relations = 12;
  kg_options.num_triples = 5000;
  kg_options.seed = 7;
  kg::Dataset dataset = kg::GenerateSyntheticKg(kg_options);
  std::printf("KG: %lld entities, %lld relations, %lld train triples\n",
              static_cast<long long>(dataset.train.num_entities()),
              static_cast<long long>(dataset.train.num_relations()),
              static_cast<long long>(dataset.train.num_triples()));

  // 2. Node grouping (Sec. II-A): random groups + relation adjacency.
  Rng rng(1);
  kg::NodeGrouping grouping =
      kg::NodeGrouping::Random(dataset.train.num_entities(), 16, &rng);
  grouping.BuildAdjacency(dataset.train);

  // 3. The HaLk model: arc embeddings + the five logical operators.
  core::ModelConfig config;
  config.num_entities = dataset.train.num_entities();
  config.num_relations = dataset.train.num_relations();
  config.dim = 16;
  config.hidden = 32;
  config.seed = 42;
  core::HalkModel model(config, &grouping);
  std::printf("model: %s with %lld parameters\n", model.name().c_str(),
              static_cast<long long>([&] {
                int64_t n = 0;
                for (const auto& p : model.Parameters()) n += p.numel();
                return n;
              }()));

  // 4. Train with Algorithm 1 (negative-sampling loss, Adam).
  core::TrainerOptions train_options;
  train_options.steps = 3000;
  // Weight the mix toward 1p (the backbone all other operators build on).
  train_options.structures = {
      query::StructureId::k1p, query::StructureId::k2p,
      query::StructureId::k1p, query::StructureId::k2i,
      query::StructureId::k1p, query::StructureId::k2d,
      query::StructureId::k1p, query::StructureId::k2in};
  train_options.batch_size = 64;
  train_options.num_negatives = 24;
  train_options.learning_rate = 1e-2f;
  train_options.queries_per_structure = 100;
  train_options.log_every = 500;
  core::Trainer trainer(&model, &dataset.train, &grouping, train_options);
  auto stats = trainer.Train();
  HALK_CHECK(stats.ok()) << stats.status().ToString();
  std::printf("trained %lld steps in %.1fs, final loss %.3f\n",
              static_cast<long long>(stats->steps), stats->seconds,
              stats->final_loss);

  // 5. Answer held-out queries: sample on the *test* graph, mark which
  //    answers need held-out edges, and evaluate the ranking.
  query::QuerySampler sampler(&dataset.test, 99);
  core::Evaluator evaluator(&model);
  for (query::StructureId s :
       {query::StructureId::k1p, query::StructureId::k2i,
        query::StructureId::k2d, query::StructureId::k2in}) {
    auto queries = sampler.SampleMany(s, 30);
    HALK_CHECK(queries.ok());
    for (auto& q : *queries) query::SplitEasyHard(&q, dataset.valid);
    core::Metrics m = evaluator.Evaluate(*queries);
    std::printf("  %-4s  MRR %.3f  Hits@3 %.3f  (%lld queries)\n",
                query::StructureName(s).c_str(), m.mrr, m.hits3,
                static_cast<long long>(m.num_queries));
  }

  // 6. Inspect one query end to end.
  auto q = sampler.Sample(query::StructureId::k2i);
  HALK_CHECK(q.ok());
  std::printf("query %s\n", q->graph.ToString().c_str());
  auto top = evaluator.TopK(q->graph, 5);
  std::printf("  top-5 neural answers: ");
  for (int64_t e : top) std::printf("%lld ", static_cast<long long>(e));
  std::printf("\n  exact answers:        ");
  for (int64_t e : q->answers) std::printf("%lld ", static_cast<long long>(e));
  std::printf("\n");
  return 0;
}
