#!/bin/sh
# Live telemetry-plane smoke: starts sparql_endpoint with --http-port 0
# (ephemeral), scrapes the embedded observability server over real HTTP,
# and validates:
#   1. /healthz answers 200 with "status":"ok";
#   2. /metrics answers 200 and the body passes the shared Prometheus
#      0.0.4 grammar checker (prometheus_body_check, argv[2]);
#   3. /queryz answers 200 with the demo traffic's aggregated query
#      statistics (the store is fed by the served requests above);
#   4. an unknown path answers 404;
#   5. --serve-journal-out wrote one parseable "serve" record per demo
#      request, carrying the plan-shape columns;
#   6. closing stdin shuts the endpoint (and its HTTP server) down
#      cleanly.
# Usage: sparql_endpoint_http_test.sh <sparql_endpoint> <prometheus_body_check>
set -eu

BIN="$1"
CHECKER="$2"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2> /dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

# The endpoint's REPL reads stdin until EOF; a fifo held open on fd 3
# keeps it alive while we scrape, and closing fd 3 shuts it down.
FIFO="$TMP/stdin.fifo"
mkfifo "$FIFO"
"$BIN" --http-port 0 --serve-journal-out "$TMP/serve.jsonl" \
  < "$FIFO" > "$TMP/out.txt" 2> "$TMP/err.txt" &
SERVER_PID=$!
exec 3> "$FIFO"

# Training runs before the server comes up; poll for the listening line.
PORT=""
tries=0
while [ -z "$PORT" ]; do
  PORT="$(sed -n 's/^telemetry listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "$TMP/out.txt" | head -n 1)"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2> /dev/null || {
    echo "FAIL: endpoint exited before the telemetry server came up" >&2
    cat "$TMP/out.txt" "$TMP/err.txt" >&2
    exit 1
  }
  tries=$((tries + 1))
  if [ "$tries" -gt 120 ]; then
    echo "FAIL: no 'telemetry listening' line after 120s" >&2
    cat "$TMP/out.txt" "$TMP/err.txt" >&2
    exit 1
  fi
  sleep 1
done

BASE="http://127.0.0.1:$PORT"

curl -fsS "$BASE/healthz" > "$TMP/healthz.json"
grep -q '"status":"ok"' "$TMP/healthz.json" || {
  echo "FAIL: /healthz did not report ok" >&2
  cat "$TMP/healthz.json" >&2
  exit 1
}

curl -fsS "$BASE/metrics" > "$TMP/metrics.txt"
"$CHECKER" "$TMP/metrics.txt" > "$TMP/checker.txt" 2>&1 || {
  echo "FAIL: /metrics body failed the Prometheus grammar checker" >&2
  cat "$TMP/checker.txt" >&2
  exit 1
}
# The scrape must include the serving and slo families this plane exists
# to expose.
grep -q '^serving_latency_us_bucket' "$TMP/metrics.txt"
grep -q '^slo_latency_burn_fast' "$TMP/metrics.txt"
grep -q '^process_rss_bytes' "$TMP/metrics.txt"
# The analytics plane's metric families: q-error distribution plus the
# per-operator time breakdown (labeled children appear once traffic ran).
grep -q '^plan_qerror_bucket' "$TMP/metrics.txt"
grep -q '^plan_node_us_bucket' "$TMP/metrics.txt"

# The demo traffic is served right after the listening line prints; poll
# briefly so the scrape never races the last request's Finish.
curl -fsS "$BASE/queryz?top=5" > "$TMP/queryz.json"
grep -q '"queries":\[' "$TMP/queryz.json" || {
  echo "FAIL: /queryz body carries no queries array" >&2
  cat "$TMP/queryz.json" >&2
  exit 1
}
tries=0
until grep -q '"fingerprint":"' "$TMP/queryz.json"; do
  tries=$((tries + 1))
  if [ "$tries" -gt 30 ]; then
    echo "FAIL: /queryz reports no aggregated structures after 30s" >&2
    cat "$TMP/queryz.json" >&2
    exit 1
  fi
  sleep 1
  curl -fsS "$BASE/queryz?top=5" > "$TMP/queryz.json"
done

STATUS="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/nope")"
[ "$STATUS" = "404" ] || {
  echo "FAIL: unknown path answered $STATUS, want 404" >&2
  exit 1
}

# EOF on stdin ends the REPL; the endpoint must exit cleanly and stop the
# HTTP server with it.
exec 3>&-
wait "$SERVER_PID"
SERVER_PID=""

# The demo traffic ran with the journal enabled: every line must be a
# "serve" record carrying a trace id.
[ -s "$TMP/serve.jsonl" ] || {
  echo "FAIL: --serve-journal-out wrote no records" >&2
  exit 1
}
if grep -vq '"record":"serve"' "$TMP/serve.jsonl"; then
  echo "FAIL: non-serve record in the journal" >&2
  cat "$TMP/serve.jsonl" >&2
  exit 1
fi
grep -q '"trace_id":"' "$TMP/serve.jsonl" || {
  echo "FAIL: journal records carry no trace_id" >&2
  exit 1
}
grep -q '"plan_nodes":' "$TMP/serve.jsonl" || {
  echo "FAIL: journal records carry no plan_nodes column" >&2
  cat "$TMP/serve.jsonl" >&2
  exit 1
}
grep -q '"dedup_ratio":' "$TMP/serve.jsonl" || {
  echo "FAIL: journal records carry no dedup_ratio column" >&2
  exit 1
}

echo PASS
