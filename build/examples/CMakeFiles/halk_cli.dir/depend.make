# Empty dependencies file for halk_cli.
# This may be replaced when dependencies are built.
