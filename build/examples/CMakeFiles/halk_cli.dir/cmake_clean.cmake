file(REMOVE_RECURSE
  "CMakeFiles/halk_cli.dir/halk_cli.cpp.o"
  "CMakeFiles/halk_cli.dir/halk_cli.cpp.o.d"
  "halk_cli"
  "halk_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
