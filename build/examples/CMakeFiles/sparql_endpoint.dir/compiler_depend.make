# Empty compiler generated dependencies file for sparql_endpoint.
# This may be replaced when dependencies are built.
