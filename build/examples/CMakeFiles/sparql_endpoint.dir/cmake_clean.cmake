file(REMOVE_RECURSE
  "CMakeFiles/sparql_endpoint.dir/sparql_endpoint.cpp.o"
  "CMakeFiles/sparql_endpoint.dir/sparql_endpoint.cpp.o.d"
  "sparql_endpoint"
  "sparql_endpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
