file(REMOVE_RECURSE
  "CMakeFiles/pruned_matching.dir/pruned_matching.cpp.o"
  "CMakeFiles/pruned_matching.dir/pruned_matching.cpp.o.d"
  "pruned_matching"
  "pruned_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruned_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
