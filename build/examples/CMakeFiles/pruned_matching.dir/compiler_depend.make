# Empty compiler generated dependencies file for pruned_matching.
# This may be replaced when dependencies are built.
