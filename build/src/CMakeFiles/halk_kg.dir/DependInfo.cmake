
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/csr.cc" "src/CMakeFiles/halk_kg.dir/kg/csr.cc.o" "gcc" "src/CMakeFiles/halk_kg.dir/kg/csr.cc.o.d"
  "/root/repo/src/kg/dictionary.cc" "src/CMakeFiles/halk_kg.dir/kg/dictionary.cc.o" "gcc" "src/CMakeFiles/halk_kg.dir/kg/dictionary.cc.o.d"
  "/root/repo/src/kg/graph.cc" "src/CMakeFiles/halk_kg.dir/kg/graph.cc.o" "gcc" "src/CMakeFiles/halk_kg.dir/kg/graph.cc.o.d"
  "/root/repo/src/kg/groups.cc" "src/CMakeFiles/halk_kg.dir/kg/groups.cc.o" "gcc" "src/CMakeFiles/halk_kg.dir/kg/groups.cc.o.d"
  "/root/repo/src/kg/io.cc" "src/CMakeFiles/halk_kg.dir/kg/io.cc.o" "gcc" "src/CMakeFiles/halk_kg.dir/kg/io.cc.o.d"
  "/root/repo/src/kg/synthetic.cc" "src/CMakeFiles/halk_kg.dir/kg/synthetic.cc.o" "gcc" "src/CMakeFiles/halk_kg.dir/kg/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/halk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
