file(REMOVE_RECURSE
  "CMakeFiles/halk_kg.dir/kg/csr.cc.o"
  "CMakeFiles/halk_kg.dir/kg/csr.cc.o.d"
  "CMakeFiles/halk_kg.dir/kg/dictionary.cc.o"
  "CMakeFiles/halk_kg.dir/kg/dictionary.cc.o.d"
  "CMakeFiles/halk_kg.dir/kg/graph.cc.o"
  "CMakeFiles/halk_kg.dir/kg/graph.cc.o.d"
  "CMakeFiles/halk_kg.dir/kg/groups.cc.o"
  "CMakeFiles/halk_kg.dir/kg/groups.cc.o.d"
  "CMakeFiles/halk_kg.dir/kg/io.cc.o"
  "CMakeFiles/halk_kg.dir/kg/io.cc.o.d"
  "CMakeFiles/halk_kg.dir/kg/synthetic.cc.o"
  "CMakeFiles/halk_kg.dir/kg/synthetic.cc.o.d"
  "libhalk_kg.a"
  "libhalk_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
