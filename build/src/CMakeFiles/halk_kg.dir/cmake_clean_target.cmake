file(REMOVE_RECURSE
  "libhalk_kg.a"
)
