# Empty dependencies file for halk_kg.
# This may be replaced when dependencies are built.
