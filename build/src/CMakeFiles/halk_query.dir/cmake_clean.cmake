file(REMOVE_RECURSE
  "CMakeFiles/halk_query.dir/query/dag.cc.o"
  "CMakeFiles/halk_query.dir/query/dag.cc.o.d"
  "CMakeFiles/halk_query.dir/query/dnf.cc.o"
  "CMakeFiles/halk_query.dir/query/dnf.cc.o.d"
  "CMakeFiles/halk_query.dir/query/executor.cc.o"
  "CMakeFiles/halk_query.dir/query/executor.cc.o.d"
  "CMakeFiles/halk_query.dir/query/ops.cc.o"
  "CMakeFiles/halk_query.dir/query/ops.cc.o.d"
  "CMakeFiles/halk_query.dir/query/optimizer.cc.o"
  "CMakeFiles/halk_query.dir/query/optimizer.cc.o.d"
  "CMakeFiles/halk_query.dir/query/sampler.cc.o"
  "CMakeFiles/halk_query.dir/query/sampler.cc.o.d"
  "CMakeFiles/halk_query.dir/query/structures.cc.o"
  "CMakeFiles/halk_query.dir/query/structures.cc.o.d"
  "libhalk_query.a"
  "libhalk_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
