
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/dag.cc" "src/CMakeFiles/halk_query.dir/query/dag.cc.o" "gcc" "src/CMakeFiles/halk_query.dir/query/dag.cc.o.d"
  "/root/repo/src/query/dnf.cc" "src/CMakeFiles/halk_query.dir/query/dnf.cc.o" "gcc" "src/CMakeFiles/halk_query.dir/query/dnf.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/halk_query.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/halk_query.dir/query/executor.cc.o.d"
  "/root/repo/src/query/ops.cc" "src/CMakeFiles/halk_query.dir/query/ops.cc.o" "gcc" "src/CMakeFiles/halk_query.dir/query/ops.cc.o.d"
  "/root/repo/src/query/optimizer.cc" "src/CMakeFiles/halk_query.dir/query/optimizer.cc.o" "gcc" "src/CMakeFiles/halk_query.dir/query/optimizer.cc.o.d"
  "/root/repo/src/query/sampler.cc" "src/CMakeFiles/halk_query.dir/query/sampler.cc.o" "gcc" "src/CMakeFiles/halk_query.dir/query/sampler.cc.o.d"
  "/root/repo/src/query/structures.cc" "src/CMakeFiles/halk_query.dir/query/structures.cc.o" "gcc" "src/CMakeFiles/halk_query.dir/query/structures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/halk_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
