# Empty compiler generated dependencies file for halk_query.
# This may be replaced when dependencies are built.
