file(REMOVE_RECURSE
  "libhalk_query.a"
)
