src/CMakeFiles/halk_query.dir/query/ops.cc.o: /root/repo/src/query/ops.cc \
 /usr/include/stdc-predef.h /root/repo/src/query/ops.h
