file(REMOVE_RECURSE
  "CMakeFiles/halk_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/halk_tensor.dir/tensor/ops.cc.o.d"
  "CMakeFiles/halk_tensor.dir/tensor/shape.cc.o"
  "CMakeFiles/halk_tensor.dir/tensor/shape.cc.o.d"
  "CMakeFiles/halk_tensor.dir/tensor/tape.cc.o"
  "CMakeFiles/halk_tensor.dir/tensor/tape.cc.o.d"
  "CMakeFiles/halk_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/halk_tensor.dir/tensor/tensor.cc.o.d"
  "libhalk_tensor.a"
  "libhalk_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
