# Empty dependencies file for halk_tensor.
# This may be replaced when dependencies are built.
