file(REMOVE_RECURSE
  "libhalk_tensor.a"
)
