file(REMOVE_RECURSE
  "libhalk_nn.a"
)
