file(REMOVE_RECURSE
  "CMakeFiles/halk_nn.dir/nn/adam.cc.o"
  "CMakeFiles/halk_nn.dir/nn/adam.cc.o.d"
  "CMakeFiles/halk_nn.dir/nn/attention.cc.o"
  "CMakeFiles/halk_nn.dir/nn/attention.cc.o.d"
  "CMakeFiles/halk_nn.dir/nn/deepsets.cc.o"
  "CMakeFiles/halk_nn.dir/nn/deepsets.cc.o.d"
  "CMakeFiles/halk_nn.dir/nn/init.cc.o"
  "CMakeFiles/halk_nn.dir/nn/init.cc.o.d"
  "CMakeFiles/halk_nn.dir/nn/linear.cc.o"
  "CMakeFiles/halk_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/halk_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/halk_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/halk_nn.dir/nn/module.cc.o"
  "CMakeFiles/halk_nn.dir/nn/module.cc.o.d"
  "libhalk_nn.a"
  "libhalk_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
