# Empty dependencies file for halk_nn.
# This may be replaced when dependencies are built.
