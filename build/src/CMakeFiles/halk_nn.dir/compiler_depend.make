# Empty compiler generated dependencies file for halk_nn.
# This may be replaced when dependencies are built.
