
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cc" "src/CMakeFiles/halk_nn.dir/nn/adam.cc.o" "gcc" "src/CMakeFiles/halk_nn.dir/nn/adam.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/halk_nn.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/halk_nn.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/deepsets.cc" "src/CMakeFiles/halk_nn.dir/nn/deepsets.cc.o" "gcc" "src/CMakeFiles/halk_nn.dir/nn/deepsets.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/halk_nn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/halk_nn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/halk_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/halk_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/halk_nn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/halk_nn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/halk_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/halk_nn.dir/nn/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/halk_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
