file(REMOVE_RECURSE
  "libhalk_core.a"
)
