
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arc.cc" "src/CMakeFiles/halk_core.dir/core/arc.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/arc.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/CMakeFiles/halk_core.dir/core/checkpoint.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/checkpoint.cc.o.d"
  "/root/repo/src/core/distance.cc" "src/CMakeFiles/halk_core.dir/core/distance.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/distance.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/halk_core.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/halk_model.cc" "src/CMakeFiles/halk_core.dir/core/halk_model.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/halk_model.cc.o.d"
  "/root/repo/src/core/loss.cc" "src/CMakeFiles/halk_core.dir/core/loss.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/loss.cc.o.d"
  "/root/repo/src/core/lsh.cc" "src/CMakeFiles/halk_core.dir/core/lsh.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/lsh.cc.o.d"
  "/root/repo/src/core/pruner.cc" "src/CMakeFiles/halk_core.dir/core/pruner.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/pruner.cc.o.d"
  "/root/repo/src/core/query_groups.cc" "src/CMakeFiles/halk_core.dir/core/query_groups.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/query_groups.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/halk_core.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/halk_core.dir/core/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/halk_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
