# Empty dependencies file for halk_core.
# This may be replaced when dependencies are built.
