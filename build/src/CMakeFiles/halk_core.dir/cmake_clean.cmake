file(REMOVE_RECURSE
  "CMakeFiles/halk_core.dir/core/arc.cc.o"
  "CMakeFiles/halk_core.dir/core/arc.cc.o.d"
  "CMakeFiles/halk_core.dir/core/checkpoint.cc.o"
  "CMakeFiles/halk_core.dir/core/checkpoint.cc.o.d"
  "CMakeFiles/halk_core.dir/core/distance.cc.o"
  "CMakeFiles/halk_core.dir/core/distance.cc.o.d"
  "CMakeFiles/halk_core.dir/core/evaluator.cc.o"
  "CMakeFiles/halk_core.dir/core/evaluator.cc.o.d"
  "CMakeFiles/halk_core.dir/core/halk_model.cc.o"
  "CMakeFiles/halk_core.dir/core/halk_model.cc.o.d"
  "CMakeFiles/halk_core.dir/core/loss.cc.o"
  "CMakeFiles/halk_core.dir/core/loss.cc.o.d"
  "CMakeFiles/halk_core.dir/core/lsh.cc.o"
  "CMakeFiles/halk_core.dir/core/lsh.cc.o.d"
  "CMakeFiles/halk_core.dir/core/pruner.cc.o"
  "CMakeFiles/halk_core.dir/core/pruner.cc.o.d"
  "CMakeFiles/halk_core.dir/core/query_groups.cc.o"
  "CMakeFiles/halk_core.dir/core/query_groups.cc.o.d"
  "CMakeFiles/halk_core.dir/core/trainer.cc.o"
  "CMakeFiles/halk_core.dir/core/trainer.cc.o.d"
  "libhalk_core.a"
  "libhalk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
