# Empty dependencies file for halk_baselines.
# This may be replaced when dependencies are built.
