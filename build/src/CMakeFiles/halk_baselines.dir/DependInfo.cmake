
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ablations.cc" "src/CMakeFiles/halk_baselines.dir/baselines/ablations.cc.o" "gcc" "src/CMakeFiles/halk_baselines.dir/baselines/ablations.cc.o.d"
  "/root/repo/src/baselines/betae.cc" "src/CMakeFiles/halk_baselines.dir/baselines/betae.cc.o" "gcc" "src/CMakeFiles/halk_baselines.dir/baselines/betae.cc.o.d"
  "/root/repo/src/baselines/cone.cc" "src/CMakeFiles/halk_baselines.dir/baselines/cone.cc.o" "gcc" "src/CMakeFiles/halk_baselines.dir/baselines/cone.cc.o.d"
  "/root/repo/src/baselines/factory.cc" "src/CMakeFiles/halk_baselines.dir/baselines/factory.cc.o" "gcc" "src/CMakeFiles/halk_baselines.dir/baselines/factory.cc.o.d"
  "/root/repo/src/baselines/mlpmix.cc" "src/CMakeFiles/halk_baselines.dir/baselines/mlpmix.cc.o" "gcc" "src/CMakeFiles/halk_baselines.dir/baselines/mlpmix.cc.o.d"
  "/root/repo/src/baselines/newlook.cc" "src/CMakeFiles/halk_baselines.dir/baselines/newlook.cc.o" "gcc" "src/CMakeFiles/halk_baselines.dir/baselines/newlook.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/halk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
