file(REMOVE_RECURSE
  "CMakeFiles/halk_baselines.dir/baselines/ablations.cc.o"
  "CMakeFiles/halk_baselines.dir/baselines/ablations.cc.o.d"
  "CMakeFiles/halk_baselines.dir/baselines/betae.cc.o"
  "CMakeFiles/halk_baselines.dir/baselines/betae.cc.o.d"
  "CMakeFiles/halk_baselines.dir/baselines/cone.cc.o"
  "CMakeFiles/halk_baselines.dir/baselines/cone.cc.o.d"
  "CMakeFiles/halk_baselines.dir/baselines/factory.cc.o"
  "CMakeFiles/halk_baselines.dir/baselines/factory.cc.o.d"
  "CMakeFiles/halk_baselines.dir/baselines/mlpmix.cc.o"
  "CMakeFiles/halk_baselines.dir/baselines/mlpmix.cc.o.d"
  "CMakeFiles/halk_baselines.dir/baselines/newlook.cc.o"
  "CMakeFiles/halk_baselines.dir/baselines/newlook.cc.o.d"
  "libhalk_baselines.a"
  "libhalk_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
