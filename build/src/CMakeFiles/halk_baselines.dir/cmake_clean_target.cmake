file(REMOVE_RECURSE
  "libhalk_baselines.a"
)
