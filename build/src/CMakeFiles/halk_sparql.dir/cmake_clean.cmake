file(REMOVE_RECURSE
  "CMakeFiles/halk_sparql.dir/sparql/adaptor.cc.o"
  "CMakeFiles/halk_sparql.dir/sparql/adaptor.cc.o.d"
  "CMakeFiles/halk_sparql.dir/sparql/lexer.cc.o"
  "CMakeFiles/halk_sparql.dir/sparql/lexer.cc.o.d"
  "CMakeFiles/halk_sparql.dir/sparql/parser.cc.o"
  "CMakeFiles/halk_sparql.dir/sparql/parser.cc.o.d"
  "libhalk_sparql.a"
  "libhalk_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
