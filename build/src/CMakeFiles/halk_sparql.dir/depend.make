# Empty dependencies file for halk_sparql.
# This may be replaced when dependencies are built.
