file(REMOVE_RECURSE
  "libhalk_sparql.a"
)
