file(REMOVE_RECURSE
  "libhalk_matching.a"
)
