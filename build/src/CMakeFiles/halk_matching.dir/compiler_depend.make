# Empty compiler generated dependencies file for halk_matching.
# This may be replaced when dependencies are built.
