file(REMOVE_RECURSE
  "CMakeFiles/halk_matching.dir/matching/candidates.cc.o"
  "CMakeFiles/halk_matching.dir/matching/candidates.cc.o.d"
  "CMakeFiles/halk_matching.dir/matching/matcher.cc.o"
  "CMakeFiles/halk_matching.dir/matching/matcher.cc.o.d"
  "CMakeFiles/halk_matching.dir/matching/pruned_matcher.cc.o"
  "CMakeFiles/halk_matching.dir/matching/pruned_matcher.cc.o.d"
  "libhalk_matching.a"
  "libhalk_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
