file(REMOVE_RECURSE
  "CMakeFiles/halk_common.dir/common/logging.cc.o"
  "CMakeFiles/halk_common.dir/common/logging.cc.o.d"
  "CMakeFiles/halk_common.dir/common/rng.cc.o"
  "CMakeFiles/halk_common.dir/common/rng.cc.o.d"
  "CMakeFiles/halk_common.dir/common/status.cc.o"
  "CMakeFiles/halk_common.dir/common/status.cc.o.d"
  "CMakeFiles/halk_common.dir/common/string_util.cc.o"
  "CMakeFiles/halk_common.dir/common/string_util.cc.o.d"
  "libhalk_common.a"
  "libhalk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
