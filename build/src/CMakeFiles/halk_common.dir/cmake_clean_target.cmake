file(REMOVE_RECURSE
  "libhalk_common.a"
)
