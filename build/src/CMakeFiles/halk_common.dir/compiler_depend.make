# Empty compiler generated dependencies file for halk_common.
# This may be replaced when dependencies are built.
