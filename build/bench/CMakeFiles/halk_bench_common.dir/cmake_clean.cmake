file(REMOVE_RECURSE
  "../lib/libhalk_bench_common.a"
  "../lib/libhalk_bench_common.pdb"
  "CMakeFiles/halk_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/halk_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halk_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
