# Empty dependencies file for halk_bench_common.
# This may be replaced when dependencies are built.
