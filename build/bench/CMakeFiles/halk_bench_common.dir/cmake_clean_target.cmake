file(REMOVE_RECURSE
  "../lib/libhalk_bench_common.a"
)
