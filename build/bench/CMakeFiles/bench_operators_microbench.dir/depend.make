# Empty dependencies file for bench_operators_microbench.
# This may be replaced when dependencies are built.
