file(REMOVE_RECURSE
  "CMakeFiles/bench_operators_microbench.dir/bench_operators_microbench.cc.o"
  "CMakeFiles/bench_operators_microbench.dir/bench_operators_microbench.cc.o.d"
  "bench_operators_microbench"
  "bench_operators_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operators_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
