file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mrr.dir/bench_table1_mrr.cc.o"
  "CMakeFiles/bench_table1_mrr.dir/bench_table1_mrr.cc.o.d"
  "bench_table1_mrr"
  "bench_table1_mrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
