# Empty dependencies file for bench_table2_hit3.
# This may be replaced when dependencies are built.
