file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_pruning.dir/bench_fig6a_pruning.cc.o"
  "CMakeFiles/bench_fig6a_pruning.dir/bench_fig6a_pruning.cc.o.d"
  "bench_fig6a_pruning"
  "bench_fig6a_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
