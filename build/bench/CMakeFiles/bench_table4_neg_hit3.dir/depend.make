# Empty dependencies file for bench_table4_neg_hit3.
# This may be replaced when dependencies are built.
