file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_neg_hit3.dir/bench_table4_neg_hit3.cc.o"
  "CMakeFiles/bench_table4_neg_hit3.dir/bench_table4_neg_hit3.cc.o.d"
  "bench_table4_neg_hit3"
  "bench_table4_neg_hit3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_neg_hit3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
