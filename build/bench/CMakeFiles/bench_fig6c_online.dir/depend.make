# Empty dependencies file for bench_fig6c_online.
# This may be replaced when dependencies are built.
