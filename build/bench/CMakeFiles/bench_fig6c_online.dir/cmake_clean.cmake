file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_online.dir/bench_fig6c_online.cc.o"
  "CMakeFiles/bench_fig6c_online.dir/bench_fig6c_online.cc.o.d"
  "bench_fig6c_online"
  "bench_fig6c_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
