# Empty compiler generated dependencies file for bench_table3_neg_mrr.
# This may be replaced when dependencies are built.
