# Empty dependencies file for bench_fig6b_offline.
# This may be replaced when dependencies are built.
