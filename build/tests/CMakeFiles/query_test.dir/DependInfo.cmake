
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query/dag_test.cc" "tests/CMakeFiles/query_test.dir/query/dag_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/dag_test.cc.o.d"
  "/root/repo/tests/query/dnf_test.cc" "tests/CMakeFiles/query_test.dir/query/dnf_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/dnf_test.cc.o.d"
  "/root/repo/tests/query/executor_test.cc" "tests/CMakeFiles/query_test.dir/query/executor_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/executor_test.cc.o.d"
  "/root/repo/tests/query/optimizer_test.cc" "tests/CMakeFiles/query_test.dir/query/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/optimizer_test.cc.o.d"
  "/root/repo/tests/query/property_test.cc" "tests/CMakeFiles/query_test.dir/query/property_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/property_test.cc.o.d"
  "/root/repo/tests/query/sampler_test.cc" "tests/CMakeFiles/query_test.dir/query/sampler_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/sampler_test.cc.o.d"
  "/root/repo/tests/query/structures_test.cc" "tests/CMakeFiles/query_test.dir/query/structures_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/structures_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/halk_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/halk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
