file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/arc_distance_test.cc.o"
  "CMakeFiles/core_test.dir/core/arc_distance_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/checkpoint_test.cc.o"
  "CMakeFiles/core_test.dir/core/checkpoint_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/halk_model_test.cc.o"
  "CMakeFiles/core_test.dir/core/halk_model_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/loss_property_test.cc.o"
  "CMakeFiles/core_test.dir/core/loss_property_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/lsh_test.cc.o"
  "CMakeFiles/core_test.dir/core/lsh_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/training_test.cc.o"
  "CMakeFiles/core_test.dir/core/training_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
