// Fig. 6b: offline (training) time of each method on the three dataset
// stand-ins, under the same step budget. The paper's observation: the
// non-geometric MLPMix costs the most; geometric methods are comparable,
// with HaLk slightly above ConE/NewLook because it trains all five
// operators.

#include <cstdio>

#include "bench_common.h"

int main() {
  halk::bench::Scale scale = halk::bench::Scale::FromEnv();
  // Relative training cost is step-count independent; a reduced budget
  // keeps the figure cheap to regenerate.
  scale.train_steps = std::min(scale.train_steps, 1500);
  std::printf("=== Fig. 6b: offline training time (seconds, %d steps) ===\n\n",
              scale.train_steps);
  std::printf("%-10s %12s %12s %12s\n", "method", "FB15k-like", "FB237-like",
              "NELL-like");

  const std::vector<std::string> models = {"halk", "cone", "newlook",
                                           "mlpmix"};
  std::vector<std::vector<double>> seconds(models.size());
  auto datasets = halk::bench::MakeAllDatasets();
  for (const auto& ds : datasets) {
    for (size_t m = 0; m < models.size(); ++m) {
      halk::bench::Trained trained =
          halk::bench::TrainModel(models[m], ds, scale);
      seconds[m].push_back(trained.offline_seconds);
    }
  }
  for (size_t m = 0; m < models.size(); ++m) {
    std::printf("%-10s %12.1f %12.1f %12.1f\n", models[m].c_str(),
                seconds[m][0], seconds[m][1], seconds[m][2]);
  }
  return 0;
}
