// Table V: ablation study on the NELL stand-in under MRR and Hits@3.
//   HaLk-V1: NewLook-style difference (raw overlap, no cardinality bound)
//            vs HaLk on 2d / 3d / dp;
//   HaLk-V2: linear-transformation negation vs HaLk on 2in / 3in / pin;
//   HaLk-V3: decoupled (NewLook-style) projection vs HaLk on 1p / 2p / 3p.

#include "bench_common.h"

namespace {

using halk::bench::BenchDataset;
using halk::bench::Scale;
using halk::query::StructureId;

void RunBlock(const char* title, const BenchDataset& ds,
              const std::string& ablation,
              const std::vector<StructureId>& structures,
              const Scale& scale) {
  std::printf("--- %s ---\n", title);
  auto workload = halk::bench::MakeEvalQueries(
      ds, structures, scale.eval_queries_per_structure, 99);
  for (bool use_mrr : {false, true}) {
    std::printf("[%s]\n", use_mrr ? "MRR" : "Hit@3");
    halk::bench::PrintHeader("variant", structures);
    for (const std::string& name : {ablation, std::string("halk")}) {
      halk::bench::Trained trained =
          halk::bench::TrainModel(name, ds, scale);
      auto values = halk::bench::EvaluatePercent(trained.model.get(),
                                                 workload, use_mrr);
      halk::bench::PrintRow(trained.model->name(), structures, values);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Scale scale = Scale::FromEnv();
  std::printf("=== Table V: ablation study on NELL-like ===\n\n");
  BenchDataset ds = halk::bench::MakeOneDataset("nell");

  RunBlock("Difference: HaLk-V1 vs HaLk", ds, "halk-v1",
           {StructureId::k2d, StructureId::k3d, StructureId::kDp}, scale);
  RunBlock("Negation: HaLk-V2 vs HaLk", ds, "halk-v2",
           {StructureId::k2in, StructureId::k3in, StructureId::kPin}, scale);
  RunBlock("Projection: HaLk-V3 vs HaLk", ds, "halk-v3",
           {StructureId::k1p, StructureId::k2p, StructureId::k3p}, scale);
  return 0;
}
