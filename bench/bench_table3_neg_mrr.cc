// Table III: MRR (%) for answering queries WITH negation (2in, 3in, pni,
// pin) — HaLk vs ConE and MLPMix (NewLook has no negation operator).

#include "bench_common.h"

int main() {
  halk::bench::Scale scale = halk::bench::Scale::FromEnv();
  halk::bench::RunModelComparison(
      "Table III: MRR (%) for queries with negation",
      {"halk", "cone", "mlpmix"}, halk::query::NegationStructures(),
      /*use_mrr=*/true, scale);
  return 0;
}
