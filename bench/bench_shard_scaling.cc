// Sharded top-k scaling study: per-query latency (p50/p99) and throughput
// of the scatter-gather ShardCoordinator at 1/2/4/8 shards, on a KG large
// enough that entity scoring — the part sharding parallelizes — dominates
// query embedding. Healthy-path answers are bit-identical at every shard
// count (asserted per query), so this measures pure speedup, not
// approximation.
//
// Two regimes, selected by HALK_BENCH_ENTITIES:
//
//  * In-RAM (default 20000 entities, HALK_BENCH_FAST=1 drops to 4000):
//    the original study against the single-thread brute-force
//    Evaluator::TopK baseline, plus a store-backed exactness check — the
//    same model snapshotted to an mmap-backed store must rank
//    bit-identically through the sharded path.
//
//  * Out-of-core (HALK_BENCH_ENTITIES above 100000, e.g. 1000000): the
//    entity table is streamed straight from the synthetic-KG stream into a
//    store snapshot without ever materializing in RAM, served through a
//    store-backed model with pinned shard workers, and queried with
//    queries sampled from a materialized *slice* of the same world (the
//    stream's slice property makes them valid against the full table).
//    The baseline is the 1-shard configuration; `peak_rss_mib` staying
//    well below `table_mib` is the out-of-core acceptance claim.
//
//   $ ./bench/bench_shard_scaling                         # in-RAM scale
//   $ HALK_BENCH_ENTITIES=1000000 ./bench/bench_shard_scaling
//
// The speedup has two independent sources: the bound-aware scan kernel
// (AccumulateTopKRange prunes an entity once its partial distance exceeds
// the k-th best, which the full-distance evaluator baseline cannot do) and
// thread parallelism across shards. On a single-core machine — see the
// "cores" key in the JSON — only the kernel contributes, and per-shard
// bookkeeping makes higher shard counts slightly slower, not faster.
//
// The model is untrained: ranking cost depends on entity count and
// dimension, not on the learned weights.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "halk/halk.h"
#include "kg/synthetic_stream.h"
#include "obs/process_metrics.h"
#include "store/convert.h"
#include "store/store.h"
#include "store/writer.h"

namespace {

using Clock = std::chrono::steady_clock;
using halk::query::StructureId;

struct LatencyStats {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

LatencyStats Summarize(std::vector<double> latencies_ms, double seconds) {
  LatencyStats out;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  out.p50_ms = latencies_ms[latencies_ms.size() / 2];
  out.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  out.qps = static_cast<double>(latencies_ms.size()) / seconds;
  return out;
}

double PeakRssMib() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// Current VmRSS via the shared process self-metrics reader, in MiB.
/// Unlike ru_maxrss this is not a high-water mark, so it shows the steady
/// working set after DropResidency unmaps cold store pages.
double CurrentRssMib() {
  return static_cast<double>(halk::obs::ReadProcessSelfStats().rss_bytes) /
         (1024.0 * 1024.0);
}

double Mib(size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

std::string SnapshotDir() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") +
         "/halk_bench_shard_scaling_snapshot";
}

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Expands a streamed entity's low-dimensional latent into a `dim`-wide
/// angle row: the latent repeats across dimensions with deterministic
/// per-(entity, dim) jitter, so the table keeps the type-cluster structure
/// (which the bound-aware scan prunes against) at full model width without
/// ever existing in RAM.
void LatentToAngles(const std::vector<double>& latent, int64_t entity,
                    int64_t dim, float* out) {
  const double two_pi = 2.0 * M_PI;
  for (int64_t j = 0; j < dim; ++j) {
    const double base = latent[static_cast<size_t>(j) % latent.size()];
    const double jitter =
        (static_cast<double>(Mix(static_cast<uint64_t>(entity) * 131 +
                                 static_cast<uint64_t>(j))) /
             18446744073709551616.0 -
         0.5) *
        0.2;
    double angle = std::fmod(base + jitter, two_pi);
    if (angle < 0.0) angle += two_pi;
    out[j] = static_cast<float>(angle);
  }
}

std::vector<halk::query::GroundedQuery> SampleWorkload(
    const halk::kg::Dataset& dataset, int num_queries, uint64_t seed) {
  halk::query::QuerySampler sampler(&dataset.train, seed);
  const std::vector<StructureId> structures = {
      StructureId::k1p, StructureId::k2p, StructureId::k2i, StructureId::kIp};
  std::vector<halk::query::GroundedQuery> queries;
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(
        sampler.Sample(structures[static_cast<size_t>(i) % structures.size()])
            .ValueOrDie());
  }
  return queries;
}

/// Runs the {1, 2, 4, 8}-shard sweep over `model`, checking every answer
/// against `expected` and recording per-count stats into `json`. Returns
/// the 1-shard qps (the out-of-core mode's baseline).
double RunShardSweep(halk::core::QueryModel* model,
                     const std::vector<halk::query::GroundedQuery>& queries,
                     const std::vector<std::vector<int64_t>>& expected,
                     int64_t k, bool pin_threads, double baseline_qps,
                     halk::bench::BenchJson* json,
                     const halk::store::EmbeddingStore* drop_store = nullptr) {
  using namespace halk;
  double one_shard_qps = 0.0;
  for (int shards : {1, 2, 4, 8}) {
    // Out-of-core mode: start each configuration against a cold mapping so
    // the RSS high-water tracks one configuration's touched pages, never
    // the cumulative union across the sweep.
    if (drop_store != nullptr) drop_store->DropResidency();
    shard::ShardOptions options;
    options.num_shards = shards;
    options.pin_threads = pin_threads;
    // Fresh registry per shard count so the instrumented gather histogram
    // covers exactly this configuration's queries.
    serving::MetricsRegistry metrics;
    shard::ShardCoordinator coordinator(model, options, nullptr, &metrics);
    std::vector<double> lat_ms;
    const Clock::time_point start = Clock::now();
    for (size_t i = 0; i < queries.size(); ++i) {
      const Clock::time_point t0 = Clock::now();
      shard::ShardedTopK top = coordinator.TopK(queries[i].graph, k);
      lat_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
      HALK_CHECK(top.ok()) << top.status.ToString();
      std::vector<int64_t> got;
      for (const core::ScoredEntity& s : top.entries) got.push_back(s.entity);
      HALK_CHECK(got == expected[i]) << "sharded ranking diverged at query "
                                     << i << " with " << shards << " shards";
    }
    const LatencyStats stats = Summarize(
        std::move(lat_ms),
        std::chrono::duration<double>(Clock::now() - start).count());
    if (shards == 1) one_shard_qps = stats.qps;
    const double reference = baseline_qps > 0.0 ? baseline_qps : one_shard_qps;
    std::printf("%-22s p50 %7.3f ms   p99 %7.3f ms   %8.1f qps (%.2fx)\n",
                (std::to_string(shards) + " shard(s)").c_str(), stats.p50_ms,
                stats.p99_ms, stats.qps, stats.qps / reference);
    const std::string prefix = "shards_" + std::to_string(shards);
    json->Set(prefix + "_qps", stats.qps, 1)
        .Set(prefix + "_p50_ms", stats.p50_ms)
        .Set(prefix + "_p99_ms", stats.p99_ms)
        .Set(prefix + "_speedup", stats.qps / reference);
    // Gather quantiles from the coordinator's own shard.gather_us histogram
    // — the instrumented view a dashboard reads, alongside the wall-clock
    // per-query numbers above (which additionally include embedding).
    bench::SetLatencyQuantiles(
        json,
        *metrics.GetHistogram("shard.gather_us",
                              serving::Histogram::ExponentialBounds(1.0, 2.0,
                                                                    26)),
        prefix + "_gather_");
  }
  return one_shard_qps;
}

/// Original in-RAM study + store-backed exactness check.
int RunInRam(int64_t num_entities, bool fast) {
  using namespace halk;
  const int num_queries = fast ? 40 : 200;
  const int64_t k = 10;

  kg::SyntheticKgOptions opt;
  opt.num_entities = num_entities;
  opt.num_relations = 12;
  opt.num_triples = num_entities * 5;
  opt.seed = 9;
  kg::Dataset dataset = kg::GenerateSyntheticKg(opt);

  core::ModelConfig config;
  config.num_entities = dataset.train.num_entities();
  config.num_relations = dataset.train.num_relations();
  config.dim = 16;
  config.hidden = 32;
  config.seed = 3;
  core::HalkModel model(config, nullptr);

  const std::vector<query::GroundedQuery> queries =
      SampleWorkload(dataset, num_queries, 77);
  std::printf("shard scaling: %d queries, %lld entities, k=%lld (in-RAM)\n",
              num_queries, static_cast<long long>(num_entities),
              static_cast<long long>(k));

  // Brute-force baseline and the reference answers for exactness checks.
  core::Evaluator evaluator(&model);
  std::vector<std::vector<int64_t>> expected;
  LatencyStats baseline;
  {
    std::vector<double> lat_ms;
    const Clock::time_point start = Clock::now();
    for (const query::GroundedQuery& q : queries) {
      const Clock::time_point t0 = Clock::now();
      expected.push_back(evaluator.TopK(q.graph, k));
      lat_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
    }
    baseline = Summarize(
        std::move(lat_ms),
        std::chrono::duration<double>(Clock::now() - start).count());
  }
  std::printf("%-22s p50 %7.3f ms   p99 %7.3f ms   %8.1f qps\n",
              "evaluator (1 thread)", baseline.p50_ms, baseline.p99_ms,
              baseline.qps);

  bench::BenchJson json("shard_scaling");
  json.Set("mode", "in_ram")
      .Set("queries", num_queries)
      .Set("entities", num_entities)
      .Set("k", static_cast<int64_t>(k))
      .Set("cores", static_cast<int>(std::thread::hardware_concurrency()))
      .Set("qps_baseline", baseline.qps, 1)
      .Set("p50_baseline_ms", baseline.p50_ms)
      .Set("p99_baseline_ms", baseline.p99_ms);

  RunShardSweep(&model, queries, expected, k, /*pin_threads=*/false,
                baseline.qps, &json);

  // Store-backed exactness: snapshot the same model into the mmap-backed
  // store and re-rank every query through 4 shards; answers must be
  // bit-identical to the in-RAM evaluator's.
  const std::string dir = SnapshotDir();
  std::filesystem::remove_all(dir);
  HALK_CHECK(store::WriteModelSnapshot(model, dir, /*num_shards=*/3).ok());
  {
    auto opened = store::EmbeddingStore::Open(dir, {});
    HALK_CHECK(opened.ok()) << opened.status().ToString();
    auto served = store::OpenServingModel(**opened, nullptr);
    HALK_CHECK(served.ok()) << served.status().ToString();
    shard::ShardOptions options;
    options.num_shards = 4;
    shard::ShardCoordinator coordinator(served->get(), options);
    for (size_t i = 0; i < queries.size(); ++i) {
      shard::ShardedTopK top = coordinator.TopK(queries[i].graph, k);
      HALK_CHECK(top.ok()) << top.status.ToString();
      std::vector<int64_t> got;
      for (const core::ScoredEntity& s : top.entries) got.push_back(s.entity);
      HALK_CHECK(got == expected[i])
          << "store-backed ranking diverged at query " << i;
    }
    std::printf("store-backed 4-shard ranking: bit-identical\n");
    json.Set("table_mib", Mib((*opened)->MappedBytes()))
        .Set("store_resident_mib", Mib((*opened)->ResidentBytes()))
        .Set("peak_rss_mib", PeakRssMib(), 1);
  }
  std::filesystem::remove_all(dir);
  json.Emit();
  return 0;
}

/// Out-of-core study: streamed table, store-backed model, pinned workers.
int RunOutOfCore(int64_t num_entities, bool fast) {
  using namespace halk;
  const int num_queries = fast ? 24 : 60;
  const int64_t k = 10;
  const int64_t dim = 16;

  kg::StreamKgOptions world;
  world.num_entities = num_entities;
  world.num_relations = 12;
  world.seed = 9;
  std::printf(
      "shard scaling: %d queries, %lld entities, k=%lld (out-of-core)\n",
      num_queries, static_cast<long long>(num_entities),
      static_cast<long long>(k));

  // Donor model at slice scale: its operator parameters (everything except
  // the entity table, which is entity-count independent) become the
  // snapshot's params blob, so the full-scale model never exists in RAM.
  // The slice also bounds the query-workload dataset's heap footprint: it
  // is most of the process's fixed overhead, which must stay small for the
  // peak-RSS-vs-table comparison to be meaningful at the 10^6 scale.
  const int64_t slice_entities = std::min<int64_t>(num_entities, 10000);
  core::ModelConfig donor_config;
  donor_config.num_entities = slice_entities;
  donor_config.num_relations = world.num_relations;
  donor_config.dim = dim;
  donor_config.hidden = 32;
  donor_config.seed = 3;

  const std::string dir = SnapshotDir();
  std::filesystem::remove_all(dir);
  const Clock::time_point write_start = Clock::now();
  {
    kg::SyntheticKgStream stream(world);
    core::HalkModel donor(donor_config, nullptr);
    store::SnapshotWriterOptions options;
    options.dir = dir;
    options.config = donor_config;
    options.config.num_entities = num_entities;
    // Aim for ~4 MiB shard files: small files keep the in-flight residency
    // of a concurrent sweep (one file per worker at a time, dropped as the
    // scan leaves it) a small fraction of the table, even on kernels that
    // account mapped-file residency at whole-file granularity. The serving
    // shard count is independent — ranges may straddle files.
    const uint64_t table_bytes =
        static_cast<uint64_t>(num_entities) * dim * sizeof(float);
    options.num_shards = static_cast<int64_t>(
        std::clamp<uint64_t>((table_bytes + (4u << 20) - 1) / (4u << 20), 8,
                             256));
    auto writer = store::SnapshotWriter::Create(options);
    HALK_CHECK(writer.ok()) << writer.status().ToString();
    std::vector<std::vector<float>> params;
    {
      const std::vector<tensor::Tensor> tensors = donor.Parameters();
      for (size_t i = 1; i < tensors.size(); ++i) {
        params.emplace_back(tensors[i].data(),
                            tensors[i].data() + tensors[i].numel());
      }
    }
    HALK_CHECK((*writer)->SetParams(std::move(params)).ok());
    // Stream the table in: one buffered batch of rows at a time, each row
    // expanded from the entity's hash-derived latent.
    const int64_t batch = 8192;
    std::vector<float> rows(static_cast<size_t>(batch * dim));
    std::vector<double> latent;
    for (int64_t e = 0; e < num_entities;) {
      const int64_t n = std::min(batch, num_entities - e);
      for (int64_t i = 0; i < n; ++i) {
        stream.EntityLatent(e + i, &latent);
        LatentToAngles(latent, e + i, dim, rows.data() + i * dim);
      }
      HALK_CHECK((*writer)->AppendEntityRows(rows.data(), n).ok());
      e += n;
    }
    HALK_CHECK((*writer)->Finish().ok());
  }
  const double write_seconds =
      std::chrono::duration<double>(Clock::now() - write_start).count();

  // Serve out of the mappings: checksum verification would fault in the
  // whole table (that is `halk_store verify`'s offline job), and pinned
  // workers keep each shard's pages warm on one core. The bounded
  // residency window is what makes this run out-of-core in the literal
  // sense — each scan drops its processed row groups once they exceed the
  // window, so the process footprint is heap plus a few windows, not the
  // table (docs/storage.md, memory-ceiling methodology).
  store::EmbeddingStore::OpenOptions open_options;
  open_options.verify_checksums = false;
  open_options.residency_window_bytes = 4u << 20;
  auto opened = store::EmbeddingStore::Open(dir, open_options);
  HALK_CHECK(opened.ok()) << opened.status().ToString();
  auto served = store::OpenServingModel(**opened, nullptr);
  HALK_CHECK(served.ok()) << served.status().ToString();

  // Queries come from a materialized slice of the same streamed world: the
  // stream's slice property keeps entity ids, types, and latents identical
  // over the shared prefix, so slice-sampled queries are valid against the
  // full table.
  kg::StreamKgOptions slice = world;
  slice.num_entities = slice_entities;
  kg::Dataset dataset = kg::MaterializeStreamDataset(slice, 0.05, 0.05);
  const std::vector<query::GroundedQuery> queries =
      SampleWorkload(dataset, num_queries, 77);

  // Reference answers once through an unsharded coordinator over the same
  // bounded store scan; every sweep configuration must reproduce them
  // bit-identically. The brute-force Evaluator is deliberately not used
  // here: DistancesToAll reads every entity row with no residency window,
  // which alone would push the RSS high-water to full table size — its
  // bit-identity against the store scan is pinned at in-RAM scale (RunInRam
  // and tests/store/) where the whole table is cheap to touch.
  std::vector<std::vector<int64_t>> expected;
  {
    shard::ShardOptions ref_options;
    ref_options.num_shards = 1;
    serving::MetricsRegistry ref_metrics;
    shard::ShardCoordinator reference(served->get(), ref_options, nullptr,
                                      &ref_metrics);
    for (const query::GroundedQuery& q : queries) {
      shard::ShardedTopK top = reference.TopK(q.graph, k);
      HALK_CHECK(top.ok()) << top.status.ToString();
      std::vector<int64_t> ids;
      for (const core::ScoredEntity& s : top.entries) ids.push_back(s.entity);
      expected.push_back(std::move(ids));
    }
  }

  bench::BenchJson json("shard_scaling");
  json.Set("mode", "out_of_core")
      .Set("queries", num_queries)
      .Set("entities", num_entities)
      .Set("k", static_cast<int64_t>(k))
      .Set("cores", static_cast<int>(std::thread::hardware_concurrency()))
      .Set("snapshot_write_s", write_seconds)
      .Set("table_mib", Mib((*opened)->MappedBytes()));

  // Each shard count in the sweep starts against a cold mapping (the
  // drop_store hook inside RunShardSweep), so peak RSS is bounded by heap
  // plus the pages one configuration's 24 bound-aware scans touch — not by
  // the table.
  const double one_shard_qps =
      RunShardSweep(served->get(), queries, expected, k, /*pin_threads=*/true,
                    /*baseline_qps=*/0.0, &json, opened->get());
  json.Set("qps_baseline", one_shard_qps, 1)
      .Set("store_resident_mib", Mib((*opened)->ResidentBytes()))
      .Set("rss_after_sweep_mib", CurrentRssMib(), 1)
      .Set("peak_rss_mib", PeakRssMib(), 1);
  std::printf("table %.1f MiB, peak RSS %.1f MiB, RSS after sweep %.1f MiB\n",
              Mib((*opened)->MappedBytes()), PeakRssMib(), CurrentRssMib());
  json.Emit();
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace

int main() {
  const bool fast = std::getenv("HALK_BENCH_FAST") != nullptr;
  // HALK_BENCH_PROFILE=1 reports where ranking time went (the `profile`
  // field of the JSON line) — never compare a profiled run's qps against
  // an unprofiled one.
  halk::bench::EnableProfilerFromEnv();
  int64_t num_entities = fast ? 4000 : 20000;
  if (const char* env = std::getenv("HALK_BENCH_ENTITIES")) {
    num_entities = std::atoll(env);
    if (num_entities <= 0) {
      std::fprintf(stderr, "bad HALK_BENCH_ENTITIES: %s\n", env);
      return 2;
    }
  }
  // Above the in-RAM comfort zone the table streams through the store.
  if (num_entities > 100000) return RunOutOfCore(num_entities, fast);
  return RunInRam(num_entities, fast);
}
