// Sharded top-k scaling study: per-query latency (p50/p99) and throughput
// of the scatter-gather ShardCoordinator at 1/2/4/8 shards against the
// single-thread brute-force Evaluator::TopK baseline, on a KG large enough
// that entity scoring — the part sharding parallelizes — dominates query
// embedding. Healthy-path answers are bit-identical at every shard count
// (asserted per query), so this measures pure speedup, not approximation.
//
// The speedup has two independent sources: the bound-aware scan kernel
// (AccumulateTopKRange prunes an entity once its partial distance exceeds
// the k-th best, which the full-distance evaluator baseline cannot do) and
// thread parallelism across shards. On a single-core machine — see the
// "cores" key in the JSON — only the kernel contributes, and per-shard
// bookkeeping makes higher shard counts slightly slower, not faster.
//
//   $ ./bench/bench_shard_scaling            # full scale
//   $ HALK_BENCH_FAST=1 ./bench/bench_shard_scaling
//
// The model is untrained: ranking cost depends on entity count and
// dimension, not on the learned weights.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "halk/halk.h"

namespace {

using Clock = std::chrono::steady_clock;
using halk::query::StructureId;

struct LatencyStats {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

LatencyStats Summarize(std::vector<double> latencies_ms, double seconds) {
  LatencyStats out;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  out.p50_ms = latencies_ms[latencies_ms.size() / 2];
  out.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  out.qps = static_cast<double>(latencies_ms.size()) / seconds;
  return out;
}

}  // namespace

int main() {
  using namespace halk;
  const bool fast = std::getenv("HALK_BENCH_FAST") != nullptr;
  // HALK_BENCH_PROFILE=1 reports where ranking time went (the `profile`
  // field of the JSON line) — never compare a profiled run's qps against
  // an unprofiled one.
  bench::EnableProfilerFromEnv();
  // Scoring 20k entities dwarfs embedding one 8-node query graph, which is
  // the regime sharding is for (production tables are larger still).
  const int64_t num_entities = fast ? 4000 : 20000;
  const int num_queries = fast ? 40 : 200;
  const int64_t k = 10;

  kg::SyntheticKgOptions opt;
  opt.num_entities = num_entities;
  opt.num_relations = 12;
  opt.num_triples = num_entities * 5;
  opt.seed = 9;
  kg::Dataset dataset = kg::GenerateSyntheticKg(opt);

  core::ModelConfig config;
  config.num_entities = dataset.train.num_entities();
  config.num_relations = dataset.train.num_relations();
  config.dim = 16;
  config.hidden = 32;
  config.seed = 3;
  core::HalkModel model(config, nullptr);

  query::QuerySampler sampler(&dataset.train, 77);
  std::vector<query::GroundedQuery> queries;
  const std::vector<StructureId> structures = {
      StructureId::k1p, StructureId::k2p, StructureId::k2i, StructureId::kIp};
  for (int i = 0; i < num_queries; ++i) {
    queries.push_back(
        sampler.Sample(structures[static_cast<size_t>(i) % structures.size()])
            .ValueOrDie());
  }
  std::printf("shard scaling: %d queries, %lld entities, k=%lld\n",
              num_queries, static_cast<long long>(num_entities),
              static_cast<long long>(k));

  // Brute-force baseline and the reference answers for exactness checks.
  core::Evaluator evaluator(&model);
  std::vector<std::vector<int64_t>> expected;
  LatencyStats baseline;
  {
    std::vector<double> lat_ms;
    const Clock::time_point start = Clock::now();
    for (const query::GroundedQuery& q : queries) {
      const Clock::time_point t0 = Clock::now();
      expected.push_back(evaluator.TopK(q.graph, k));
      lat_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
    }
    baseline = Summarize(
        std::move(lat_ms),
        std::chrono::duration<double>(Clock::now() - start).count());
  }
  std::printf("%-22s p50 %7.3f ms   p99 %7.3f ms   %8.1f qps\n",
              "evaluator (1 thread)", baseline.p50_ms, baseline.p99_ms,
              baseline.qps);

  bench::BenchJson json("shard_scaling");
  json.Set("queries", num_queries)
      .Set("entities", num_entities)
      .Set("k", static_cast<int64_t>(k))
      .Set("cores", static_cast<int>(std::thread::hardware_concurrency()))
      .Set("qps_baseline", baseline.qps, 1)
      .Set("p50_baseline_ms", baseline.p50_ms)
      .Set("p99_baseline_ms", baseline.p99_ms);

  for (int shards : {1, 2, 4, 8}) {
    shard::ShardOptions options;
    options.num_shards = shards;
    // Fresh registry per shard count so the instrumented gather histogram
    // covers exactly this configuration's queries.
    serving::MetricsRegistry metrics;
    shard::ShardCoordinator coordinator(&model, options, nullptr, &metrics);
    std::vector<double> lat_ms;
    const Clock::time_point start = Clock::now();
    for (size_t i = 0; i < queries.size(); ++i) {
      const Clock::time_point t0 = Clock::now();
      shard::ShardedTopK top = coordinator.TopK(queries[i].graph, k);
      lat_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
      HALK_CHECK(top.ok()) << top.status.ToString();
      std::vector<int64_t> got;
      for (const core::ScoredEntity& s : top.entries) got.push_back(s.entity);
      HALK_CHECK(got == expected[i]) << "sharded ranking diverged at query "
                                     << i << " with " << shards << " shards";
    }
    const LatencyStats stats = Summarize(
        std::move(lat_ms),
        std::chrono::duration<double>(Clock::now() - start).count());
    std::printf("%-22s p50 %7.3f ms   p99 %7.3f ms   %8.1f qps (%.2fx)\n",
                (std::to_string(shards) + " shard(s)").c_str(), stats.p50_ms,
                stats.p99_ms, stats.qps, stats.qps / baseline.qps);
    const std::string prefix = "shards_" + std::to_string(shards);
    json.Set(prefix + "_qps", stats.qps, 1)
        .Set(prefix + "_p50_ms", stats.p50_ms)
        .Set(prefix + "_p99_ms", stats.p99_ms)
        .Set(prefix + "_speedup", stats.qps / baseline.qps);
    // Gather quantiles from the coordinator's own shard.gather_us histogram
    // — the instrumented view a dashboard reads, alongside the wall-clock
    // per-query numbers above (which additionally include embedding).
    bench::SetLatencyQuantiles(
        &json,
        *metrics.GetHistogram("shard.gather_us",
                              serving::Histogram::ExponentialBounds(1.0, 2.0,
                                                                    26)),
        prefix + "_gather_");
  }
  json.Emit();
  return 0;
}
