// Operator-level microbenchmarks (google-benchmark): forward latency of
// each HaLk logical operator and of the distance function, across batch
// sizes — the constant-time operator costs behind the complexity analysis
// of Sec. III-H and the online-time decomposition of Fig. 6c.

#include <benchmark/benchmark.h>

#include "halk/halk.h"

namespace {

struct Fixture {
  Fixture() : rng(1) {
    config.num_entities = 1000;
    config.num_relations = 20;
    config.dim = 16;
    config.hidden = 32;
    config.seed = 5;
    grouping = std::make_unique<halk::kg::NodeGrouping>(
        halk::kg::NodeGrouping::Random(config.num_entities, 16, &rng));
    model = std::make_unique<halk::core::HalkModel>(config, nullptr);
  }

  halk::core::ArcBatch Anchors(int64_t batch) {
    std::vector<int64_t> ids(static_cast<size_t>(batch));
    for (auto& id : ids) {
      id = static_cast<int64_t>(rng.UniformInt(
          static_cast<uint64_t>(config.num_entities)));
    }
    return model->EmbedAnchors(ids);
  }

  std::vector<int64_t> Relations(int64_t batch) {
    std::vector<int64_t> ids(static_cast<size_t>(batch));
    for (auto& id : ids) {
      id = static_cast<int64_t>(rng.UniformInt(
          static_cast<uint64_t>(config.num_relations)));
    }
    return ids;
  }

  halk::Rng rng;
  halk::core::ModelConfig config;
  std::unique_ptr<halk::kg::NodeGrouping> grouping;
  std::unique_ptr<halk::core::HalkModel> model;
};

Fixture& F() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_Projection(benchmark::State& state) {
  const int64_t batch = state.range(0);
  auto in = F().Anchors(batch);
  auto rels = F().Relations(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(F().model->Projection(in, rels));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_Intersection(benchmark::State& state) {
  const int64_t batch = state.range(0);
  auto a = F().model->Projection(F().Anchors(batch), F().Relations(batch));
  auto b = F().model->Projection(F().Anchors(batch), F().Relations(batch));
  auto c = F().model->Projection(F().Anchors(batch), F().Relations(batch));
  for (auto _ : state) {
    benchmark::DoNotOptimize(F().model->Intersection({a, b, c}, {}));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_Difference(benchmark::State& state) {
  const int64_t batch = state.range(0);
  auto a = F().model->Projection(F().Anchors(batch), F().Relations(batch));
  auto b = F().model->Projection(F().Anchors(batch), F().Relations(batch));
  for (auto _ : state) {
    benchmark::DoNotOptimize(F().model->Difference({a, b}));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_Negation(benchmark::State& state) {
  const int64_t batch = state.range(0);
  auto a = F().model->Projection(F().Anchors(batch), F().Relations(batch));
  for (auto _ : state) {
    benchmark::DoNotOptimize(F().model->Negation(a));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_DistancesToAllEntities(benchmark::State& state) {
  auto a = F().model->Projection(F().Anchors(1), F().Relations(1));
  halk::core::EmbeddingBatch emb{a.center, a.length};
  std::vector<float> out;
  for (auto _ : state) {
    F().model->DistancesToAll(emb, 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * F().config.num_entities);
}

BENCHMARK(BM_Projection)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_Intersection)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_Difference)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_Negation)->Arg(1)->Arg(32)->Arg(128);
BENCHMARK(BM_DistancesToAllEntities);

}  // namespace

BENCHMARK_MAIN();
