// Table IV: Hits@3 (%) for answering queries WITH negation — same setting
// as Table III with the Hits@3 metric.

#include "bench_common.h"

int main() {
  halk::bench::Scale scale = halk::bench::Scale::FromEnv();
  halk::bench::RunModelComparison(
      "Table IV: Hits@3 (%) for queries with negation",
      {"halk", "cone", "mlpmix"}, halk::query::NegationStructures(),
      /*use_mrr=*/false, scale);
  return 0;
}
