// Table VI: accuracy and execution time vs query size on the NELL
// stand-in — HaLk (neural executor) vs GFinder-style subgraph matching.
// Query sizes 1..5 map to the structures 1p, 2p, pi, pip, p3ip.
//
// Protocol: ground truth comes from the full (test) graph; the matcher
// answers from the observed (validation) graph, so it misses answers that
// require held-out edges; HaLk is trained on the training graph and ranks
// all entities. Accuracy is answer-set recall at k = |true answers|.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.h"

namespace {

double RecallAtTruthSize(const std::vector<int64_t>& ranked_topk,
                         const std::vector<int64_t>& truth) {
  int64_t hit = 0;
  for (int64_t e : ranked_topk) {
    hit += std::binary_search(truth.begin(), truth.end(), e);
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

}  // namespace

int main() {
  using halk::query::StructureId;
  halk::bench::Scale scale = halk::bench::Scale::FromEnv();

  std::printf("=== Table VI: accuracy & execution time vs query size "
              "(NELL-like) ===\n\n");
  halk::bench::BenchDataset ds = halk::bench::MakeOneDataset("nell");

  halk::bench::Trained trained = halk::bench::TrainModel("halk", ds, scale);
  halk::core::Evaluator evaluator(trained.model.get());
  halk::matching::SubgraphMatcher matcher(&ds.data.valid);

  const std::vector<std::pair<int, StructureId>> sizes = {
      {1, StructureId::k1p}, {2, StructureId::k2p}, {3, StructureId::kPi},
      {4, StructureId::kPip}, {5, StructureId::kP3ip}};

  std::printf("%3s %6s | %9s %9s | %10s %10s\n", "QS", "EQS", "HaLk-acc",
              "GF-acc", "HaLk-ms", "GF-ms");
  halk::query::QuerySampler sampler(&ds.data.test, 3);
  for (const auto& [size, structure] : sizes) {
    const int n = scale.eval_queries_per_structure;
    double halk_acc = 0.0;
    double gf_acc = 0.0;
    double halk_ms = 0.0;
    double gf_ms = 0.0;
    for (int i = 0; i < n; ++i) {
      auto q = sampler.Sample(structure);
      HALK_CHECK(q.ok());

      const auto t0 = std::chrono::steady_clock::now();
      auto top =
          evaluator.TopK(q->graph, static_cast<int64_t>(q->answers.size()));
      halk_ms += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      halk_acc += RecallAtTruthSize(top, q->answers);

      halk::matching::MatchStats stats;
      auto matched = matcher.Match(q->graph, &stats);
      HALK_CHECK(matched.ok());
      gf_ms += stats.millis;
      int64_t hit = 0;
      for (int64_t a : q->answers) {
        hit += std::binary_search(matched->begin(), matched->end(), a);
      }
      gf_acc += static_cast<double>(hit) /
                static_cast<double>(q->answers.size());
    }
    std::printf("%3d %6s | %8.1f%% %8.1f%% | %10.2f %10.2f\n", size,
                halk::query::StructureName(structure).c_str(),
                100.0 * halk_acc / n, 100.0 * gf_acc / n, halk_ms / n,
                gf_ms / n);
  }
  return 0;
}
