#ifndef HALK_BENCH_BENCH_COMMON_H_
#define HALK_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "halk/halk.h"

namespace halk::bench {

/// The one machine-readable summary line every bench ends with. Keys keep
/// insertion order ("bench" is always first, then the provenance fields
/// `git_sha` / `timestamp` added by the constructor) so the lines diff
/// cleanly across runs. Emit() prints `JSON {...}` to stdout — the grep
/// target for longitudinal perf tracking — appends a `profile` field with
/// the top-5 self-time regions when the global profiler is enabled, and
/// writes the same object to BENCH_<name>.json at the repo root
/// (HALK_BENCH_OUTPUT_DIR overrides the directory; keep keys stable once
/// a bench has shipped). `tools/halk_bench_diff` compares two such files.
class BenchJson {
 public:
  explicit BenchJson(const std::string& name);

  BenchJson& Set(const std::string& key, const std::string& value);
  BenchJson& Set(const std::string& key, const char* value);
  BenchJson& Set(const std::string& key, double value, int precision = 3);
  BenchJson& Set(const std::string& key, int64_t value);
  BenchJson& Set(const std::string& key, int value);

  std::string ToJson() const;
  void Emit() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;  // pre-rendered
};

/// Renders the `n` largest self-time regions of a profile snapshot as one
/// flat string — `path=<self_ms>ms/<count>x` entries joined by `|` — so
/// BENCH_*.json stays a flat JSON object (the shared line parser and
/// bench_diff reject nested containers by design).
std::string RenderTopSelf(const obs::ProfileSnapshot& snapshot, int n);

/// Enables the global profiler when HALK_BENCH_PROFILE=1, so benches that
/// never train (the infra benches serve an untrained model) still report
/// where their serving/ranking time went via BenchJson's `profile` field.
/// Training benches get this plus the flamegraph/journal files through
/// TrainModel. Returns whether profiling is on.
bool EnableProfilerFromEnv();

/// Records `<prefix>p50_ms` / `<prefix>p95_ms` / `<prefix>p99_ms` from an
/// instrumented latency histogram (whose observations are in microseconds,
/// the serving convention) — the quantiles a production dashboard would
/// read, rather than bench-side wall-clock resampling.
void SetLatencyQuantiles(BenchJson* json, const serving::Histogram& histogram,
                         const std::string& prefix = "");

/// Experiment scale. The defaults regenerate the paper tables in minutes
/// on one CPU core; set HALK_BENCH_FAST=1 in the environment for a quick
/// smoke-scale run (same code paths, noisier numbers).
struct Scale {
  int train_steps = 4000;
  int batch_size = 64;
  int num_negatives = 24;
  float learning_rate = 1e-2f;
  int pool_per_structure = 500;
  int eval_queries_per_structure = 25;
  int64_t dim = 32;
  int64_t hidden = 64;
  float gamma = 4.0f;
  int num_groups = 16;

  static Scale FromEnv();
};

/// A benchmark dataset: synthetic stand-in KG + node grouping.
struct BenchDataset {
  kg::Dataset data;
  std::unique_ptr<kg::NodeGrouping> grouping;
};

/// The three stand-ins of the paper's datasets, in table order:
/// FB15k-like, FB237-like, NELL-like.
std::vector<BenchDataset> MakeAllDatasets(uint64_t seed = 42);
BenchDataset MakeOneDataset(const std::string& which, uint64_t seed = 42);

/// Result of an offline training run.
struct Trained {
  std::unique_ptr<core::QueryModel> model;
  double offline_seconds = 0.0;
};

/// Builds and trains a model by factory name on the dataset's training
/// graph (structures unsupported by the model are skipped automatically).
Trained TrainModel(const std::string& model_name, const BenchDataset& ds,
                   const Scale& scale);

/// Evaluation workload: per structure, queries sampled on the test graph
/// with easy answers marked against the validation graph (the paper's
/// hard-answer protocol).
std::map<query::StructureId, std::vector<query::GroundedQuery>>
MakeEvalQueries(const BenchDataset& ds,
                const std::vector<query::StructureId>& structures,
                int per_structure, uint64_t seed);

/// Evaluates one model on a prepared workload; returns metric (%) per
/// structure plus the unweighted average, where the metric is MRR when
/// `use_mrr`, else Hits@3.
std::map<query::StructureId, double> EvaluatePercent(
    core::QueryModel* model,
    const std::map<query::StructureId, std::vector<query::GroundedQuery>>&
        workload,
    bool use_mrr);

/// Prints one table row: "| name | v1 | v2 | ... | avg |" with '-' for
/// missing structures.
void PrintRow(const std::string& name,
              const std::vector<query::StructureId>& columns,
              const std::map<query::StructureId, double>& values);

void PrintHeader(const std::string& first_column,
                 const std::vector<query::StructureId>& columns);

/// Shared driver for Tables I-IV: trains each model per dataset and prints
/// metric rows for the given structures.
void RunModelComparison(const std::string& title,
                        const std::vector<std::string>& model_names,
                        const std::vector<query::StructureId>& structures,
                        bool use_mrr, const Scale& scale);

}  // namespace halk::bench

#endif  // HALK_BENCH_BENCH_COMMON_H_
