// Table II: Hits@3 (%) for answering queries WITHOUT negation — same
// setting as Table I with the paper's second headline metric.

#include "bench_common.h"

int main() {
  halk::bench::Scale scale = halk::bench::Scale::FromEnv();
  halk::bench::RunModelComparison(
      "Table II: Hits@3 (%) for queries without negation",
      {"halk", "cone", "newlook", "mlpmix"},
      halk::query::EpfoDifferenceStructures(), /*use_mrr=*/false, scale);
  return 0;
}
