// Fig. 6c: online query time of each method on the three dataset
// stand-ins — average milliseconds per query over the six large structures
// (2ipp..3ippd), embedding methods vs the GFinder-style matcher (whose
// time includes its dynamic candidate-index construction, as in the
// paper's protocol).

#include <chrono>
#include <cstdio>

#include "bench_common.h"

namespace {

double AverageQueryMillis(halk::core::QueryModel* model,
                          const halk::bench::BenchDataset& ds, int queries) {
  halk::core::Evaluator evaluator(model);
  halk::query::QuerySampler sampler(&ds.data.test, 21);
  double total = 0.0;
  int counted = 0;
  for (halk::query::StructureId s : halk::query::PruningStructures()) {
    if (!halk::core::ModelSupportsStructure(*model, s)) continue;
    for (int i = 0; i < queries; ++i) {
      auto q = sampler.Sample(s);
      HALK_CHECK(q.ok());
      const auto t0 = std::chrono::steady_clock::now();
      evaluator.TopK(q->graph, 20);
      total += std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
      ++counted;
    }
  }
  return total / counted;
}

double AverageMatcherMillis(const halk::bench::BenchDataset& ds,
                            int queries) {
  halk::matching::SubgraphMatcher matcher(&ds.data.test);
  halk::query::QuerySampler sampler(&ds.data.test, 21);
  double total = 0.0;
  int counted = 0;
  for (halk::query::StructureId s : halk::query::PruningStructures()) {
    for (int i = 0; i < queries; ++i) {
      auto q = sampler.Sample(s);
      HALK_CHECK(q.ok());
      halk::matching::MatchStats stats;
      HALK_CHECK(matcher.Match(q->graph, &stats).ok());
      total += stats.millis;
      ++counted;
    }
  }
  return total / counted;
}

}  // namespace

int main() {
  halk::bench::Scale scale = halk::bench::Scale::FromEnv();
  // Online latency does not depend on model quality; train only briefly.
  scale.train_steps = std::min(scale.train_steps, 200);
  const int queries = std::max(5, scale.eval_queries_per_structure / 2);

  std::printf("=== Fig. 6c: online query time (ms/query, %d queries x 6 "
              "large structures) ===\n\n",
              queries);
  std::printf("%-10s %12s %12s %12s\n", "method", "FB15k-like", "FB237-like",
              "NELL-like");

  auto datasets = halk::bench::MakeAllDatasets();
  const std::vector<std::string> models = {"halk", "cone", "newlook",
                                           "mlpmix"};
  std::vector<std::vector<double>> ms(models.size() + 1);
  for (const auto& ds : datasets) {
    for (size_t m = 0; m < models.size(); ++m) {
      halk::bench::Trained trained =
          halk::bench::TrainModel(models[m], ds, scale);
      ms[m].push_back(AverageQueryMillis(trained.model.get(), ds, queries));
    }
    ms[models.size()].push_back(AverageMatcherMillis(ds, queries));
  }
  for (size_t m = 0; m < models.size(); ++m) {
    std::printf("%-10s %12.3f %12.3f %12.3f\n", models[m].c_str(),
                ms[m][0], ms[m][1], ms[m][2]);
  }
  std::printf("%-10s %12.3f %12.3f %12.3f\n", "gfinder",
              ms[models.size()][0], ms[models.size()][1],
              ms[models.size()][2]);
  return 0;
}
