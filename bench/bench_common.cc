#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace halk::bench {

using query::StructureId;

namespace {

std::string Utcnow() {
  const std::time_t now = std::time(nullptr);
  std::tm parts{};
  gmtime_r(&now, &parts);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &parts);
  return buf;
}

}  // namespace

BenchJson::BenchJson(const std::string& name) : name_(name) {
  fields_.emplace_back("bench", "\"" + name + "\"");
  // Provenance: which build produced the number, and when. The sha is the
  // commit seen at CMake configure time ("unknown" outside a git clone).
  fields_.emplace_back("git_sha", "\"" HALK_GIT_SHA "\"");
  fields_.emplace_back("timestamp", "\"" + Utcnow() + "\"");
}

BenchJson& BenchJson::Set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + value + "\"");
  return *this;
}

BenchJson& BenchJson::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

BenchJson& BenchJson::Set(const std::string& key, double value,
                          int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  fields_.emplace_back(key, buf);
  return *this;
}

BenchJson& BenchJson::Set(const std::string& key, int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

BenchJson& BenchJson::Set(const std::string& key, int value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

std::string BenchJson::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + fields_[i].first + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

bool EnableProfilerFromEnv() {
  const char* env = std::getenv("HALK_BENCH_PROFILE");
  const bool profile = env != nullptr && env[0] == '1';
  if (profile) obs::Profiler::Global().set_enabled(true);
  return profile;
}

std::string RenderTopSelf(const obs::ProfileSnapshot& snapshot, int n) {
  std::string out;
  for (const obs::ProfileFlatEntry& e : snapshot.TopSelf(n)) {
    if (!out.empty()) out += "|";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "=%.3fms/%lldx",
                  static_cast<double>(e.self_ns) / 1e6,
                  static_cast<long long>(e.count));
    out += e.path + buf;
  }
  return out;
}

void BenchJson::Emit() const {
  BenchJson with_profile = *this;
  // A profiled run records where its time went right in the summary line;
  // unprofiled runs keep the historical schema (no key at all).
  if (obs::Profiler::Global().enabled()) {
    with_profile.Set("profile",
                     RenderTopSelf(obs::Profiler::Global().Snapshot(), 5));
  }
  const std::string json = with_profile.ToJson();
  std::printf("JSON %s\n", json.c_str());
  const char* dir = std::getenv("HALK_BENCH_OUTPUT_DIR");
  const std::string path = std::string(dir != nullptr ? dir
                                                      : HALK_REPO_ROOT_DIR) +
                           "/BENCH_" + name_ + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
}

void SetLatencyQuantiles(BenchJson* json, const serving::Histogram& histogram,
                         const std::string& prefix) {
  json->Set(prefix + "p50_ms", histogram.Quantile(0.50) / 1000.0)
      .Set(prefix + "p95_ms", histogram.Quantile(0.95) / 1000.0)
      .Set(prefix + "p99_ms", histogram.Quantile(0.99) / 1000.0);
}

Scale Scale::FromEnv() {
  Scale s;
  const char* fast = std::getenv("HALK_BENCH_FAST");
  if (fast != nullptr && fast[0] == '1') {
    s.train_steps = 250;
    s.pool_per_structure = 40;
    s.eval_queries_per_structure = 10;
  }
  // Fine-grained budget control, e.g. HALK_BENCH_STEPS=1500 for a capture
  // that finishes on a time budget, or 8000 for a higher-fidelity run.
  const char* steps = std::getenv("HALK_BENCH_STEPS");
  if (steps != nullptr && std::atoi(steps) > 0) {
    s.train_steps = std::atoi(steps);
  }
  return s;
}

std::vector<BenchDataset> MakeAllDatasets(uint64_t seed) {
  std::vector<BenchDataset> out;
  for (const char* which : {"fb15k", "fb237", "nell"}) {
    out.push_back(MakeOneDataset(which, seed));
  }
  return out;
}

BenchDataset MakeOneDataset(const std::string& which, uint64_t seed) {
  BenchDataset ds;
  if (which == "fb15k") {
    ds.data = kg::MakeFb15kLike(seed);
  } else if (which == "fb237") {
    ds.data = kg::MakeFb237Like(seed);
  } else if (which == "nell") {
    ds.data = kg::MakeNellLike(seed);
  } else {
    HALK_CHECK(false) << "unknown dataset " << which;
  }
  Rng rng(seed * 31 + 7);
  ds.grouping = std::make_unique<kg::NodeGrouping>(
      kg::NodeGrouping::Random(ds.data.train.num_entities(), 16, &rng));
  ds.grouping->BuildAdjacency(ds.data.train);
  return ds;
}

Trained TrainModel(const std::string& model_name, const BenchDataset& ds,
                   const Scale& scale) {
  core::ModelConfig config;
  config.num_entities = ds.data.train.num_entities();
  config.num_relations = ds.data.train.num_relations();
  config.dim = scale.dim;
  config.hidden = scale.hidden;
  config.gamma = scale.gamma;
  config.seed = 1234;
  auto model =
      baselines::CreateModel(model_name, config, ds.grouping.get());
  HALK_CHECK(model.ok()) << model.status().ToString();

  core::TrainerOptions options;
  options.steps = scale.train_steps;
  options.batch_size = scale.batch_size;
  options.num_negatives = scale.num_negatives;
  options.learning_rate = scale.learning_rate;
  options.queries_per_structure = scale.pool_per_structure;
  options.seed = 7;
  // Weight the mix toward one-hop queries, as in the Query2Box-family
  // protocols where 1p training covers every KG edge. Negation structures
  // are trained at lower frequency: their near-complement answer sets give
  // noisy gradients that disturb the shared rotation geometry (the same
  // phenomenon behind the paper's observation that negation accuracy is
  // universally low).
  {
    using query::StructureId;
    std::vector<StructureId> mix;
    for (int repeat = 0; repeat < 2; ++repeat) {
      for (StructureId s :
           {StructureId::k2p, StructureId::k3p, StructureId::k2i,
            StructureId::k3i, StructureId::k2d, StructureId::k3d}) {
        mix.push_back(StructureId::k1p);
        mix.push_back(s);
      }
    }
    for (StructureId s : query::NegationStructures()) mix.push_back(s);
    options.structures = std::move(mix);
  }
  // Opt-in training observability, shared by every bench binary:
  //   HALK_BENCH_PROFILE=1  → enable the profiler for the run, report the
  //     phase breakdown, and write a collapsed-stack flamegraph
  //     (FLAME_train_<model>_<dataset>.txt next to the BENCH_*.json files);
  //   HALK_BENCH_JOURNAL=1  → write the structured training journal
  //     (JOURNAL_train_<model>_<dataset>.jsonl, same directory).
  // Both default off so perf-sensitive captures pay nothing.
  const char* out_dir_env = std::getenv("HALK_BENCH_OUTPUT_DIR");
  const std::string out_dir =
      out_dir_env != nullptr ? out_dir_env : HALK_REPO_ROOT_DIR;
  const std::string run_tag = model_name + "_" + ds.data.name;
  const char* profile_env = std::getenv("HALK_BENCH_PROFILE");
  const bool profile = profile_env != nullptr && profile_env[0] == '1';
  options.profile = profile;
  const char* journal_env = std::getenv("HALK_BENCH_JOURNAL");
  std::unique_ptr<obs::TrainJournal> journal;
  if (journal_env != nullptr && journal_env[0] == '1') {
    auto opened = obs::TrainJournal::Open(out_dir + "/JOURNAL_train_" +
                                          run_tag + ".jsonl");
    if (opened.ok()) {
      journal = std::move(*opened);
      options.journal = journal.get();
    } else {
      std::fprintf(stderr, "warning: %s\n",
                   opened.status().ToString().c_str());
    }
  }

  core::Trainer trainer(model->get(), &ds.data.train, ds.grouping.get(),
                        options);
  auto stats = trainer.Train();
  HALK_CHECK(stats.ok()) << stats.status().ToString();

  if (profile) {
    const std::string flame_path =
        out_dir + "/FLAME_train_" + run_tag + ".txt";
    FILE* f = std::fopen(flame_path.c_str(), "w");
    if (f != nullptr) {
      const std::string collapsed =
          obs::Profiler::Global().Snapshot().ToCollapsed();
      std::fwrite(collapsed.data(), 1, collapsed.size(), f);
      std::fclose(f);
    }
    std::printf(
        "train phases (%s): sample %.2fs embed %.2fs loss %.2fs "
        "backward %.2fs adam %.2fs of %.2fs total\n",
        run_tag.c_str(), stats->sample_seconds, stats->embed_seconds,
        stats->loss_seconds, stats->backward_seconds, stats->adam_seconds,
        stats->seconds);
  }

  Trained out;
  out.model = std::move(*model);
  out.offline_seconds = stats->seconds;
  return out;
}

std::map<StructureId, std::vector<query::GroundedQuery>> MakeEvalQueries(
    const BenchDataset& ds, const std::vector<StructureId>& structures,
    int per_structure, uint64_t seed) {
  std::map<StructureId, std::vector<query::GroundedQuery>> out;
  query::QuerySampler sampler(&ds.data.test, seed);
  for (StructureId s : structures) {
    auto queries = sampler.SampleMany(s, per_structure);
    HALK_CHECK(queries.ok()) << query::StructureName(s) << ": "
                             << queries.status().ToString();
    for (auto& q : *queries) query::SplitEasyHard(&q, ds.data.valid);
    out[s] = std::move(*queries);
  }
  return out;
}

std::map<StructureId, double> EvaluatePercent(
    core::QueryModel* model,
    const std::map<StructureId, std::vector<query::GroundedQuery>>& workload,
    bool use_mrr) {
  core::Evaluator evaluator(model);
  std::map<StructureId, double> out;
  for (const auto& [structure, queries] : workload) {
    if (!core::ModelSupportsStructure(*model, structure)) continue;
    core::Metrics m = evaluator.Evaluate(queries);
    out[structure] = 100.0 * (use_mrr ? m.mrr : m.hits3);
  }
  return out;
}

void PrintHeader(const std::string& first_column,
                 const std::vector<StructureId>& columns) {
  std::printf("%-10s", first_column.c_str());
  for (StructureId s : columns) {
    std::printf(" %6s", query::StructureName(s).c_str());
  }
  std::printf(" %6s\n", "avg");
}

void PrintRow(const std::string& name,
              const std::vector<StructureId>& columns,
              const std::map<StructureId, double>& values) {
  std::printf("%-10s", name.c_str());
  double sum = 0.0;
  int count = 0;
  for (StructureId s : columns) {
    auto it = values.find(s);
    if (it == values.end()) {
      std::printf(" %6s", "-");
    } else {
      std::printf(" %6.1f", it->second);
      sum += it->second;
      ++count;
    }
  }
  if (count > 0) {
    std::printf(" %6.1f\n", sum / count);
  } else {
    std::printf(" %6s\n", "-");
  }
  std::fflush(stdout);  // keep progress visible when output is redirected
}

void RunModelComparison(const std::string& title,
                        const std::vector<std::string>& model_names,
                        const std::vector<StructureId>& structures,
                        bool use_mrr, const Scale& scale) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "(synthetic stand-in KGs; absolute values are not comparable to the "
      "paper, shapes are — see EXPERIMENTS.md)\n\n");
  for (const BenchDataset& ds : MakeAllDatasets()) {
    std::printf("--- dataset %s ---\n", ds.data.name.c_str());
    auto workload = MakeEvalQueries(ds, structures,
                                    scale.eval_queries_per_structure, 99);
    PrintHeader("method", structures);
    for (const std::string& name : model_names) {
      Trained trained = TrainModel(name, ds, scale);
      auto values = EvaluatePercent(trained.model.get(), workload, use_mrr);
      PrintRow(trained.model->name(), structures, values);
    }
    std::printf("\n");
  }
}

}  // namespace halk::bench
