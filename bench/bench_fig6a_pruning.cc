// Fig. 6a: accuracy and query time of the GFinder-style matcher before and
// after HaLk pruning, on the six large structures (2ipp, 2ippu, 2ippd,
// 3ipp, 3ippu, 3ippd) over the NELL stand-in. Pruning keeps the top-20
// HaLk candidates per query variable and matches on the induced subgraph.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

int main() {
  halk::bench::Scale scale = halk::bench::Scale::FromEnv();

  std::printf("=== Fig. 6a: GFinder accuracy & query time before/after "
              "HaLk pruning (NELL-like, top-20) ===\n\n");
  halk::bench::BenchDataset ds = halk::bench::MakeOneDataset("nell");
  halk::bench::Trained trained = halk::bench::TrainModel("halk", ds, scale);
  auto* halk_model =
      dynamic_cast<halk::core::HalkModel*>(trained.model.get());
  HALK_CHECK(halk_model != nullptr);

  halk::matching::SubgraphMatcher full(&ds.data.test);
  halk::matching::PrunedMatcher pruned(halk_model, &ds.data.test,
                                       /*top_k=*/20);
  halk::query::QuerySampler sampler(&ds.data.test, 11);

  std::printf("%-7s | %9s %9s | %11s %11s\n", "query", "acc", "acc+prune",
              "time(ms)", "time+prune");
  for (halk::query::StructureId s : halk::query::PruningStructures()) {
    const int n = std::max(5, scale.eval_queries_per_structure / 2);
    double acc_full = 0.0;
    double acc_pruned = 0.0;
    double ms_full = 0.0;
    double ms_pruned = 0.0;
    for (int i = 0; i < n; ++i) {
      auto q = sampler.Sample(s);
      HALK_CHECK(q.ok());
      halk::matching::MatchStats fs, ps;
      auto fr = full.Match(q->graph, &fs);
      auto pr = pruned.Match(q->graph, &ps);
      HALK_CHECK(fr.ok());
      HALK_CHECK(pr.ok());
      ms_full += fs.millis;
      ms_pruned += ps.millis;
      auto recall = [&](const std::vector<int64_t>& got) {
        int64_t hit = 0;
        for (int64_t a : q->answers) {
          hit += std::binary_search(got.begin(), got.end(), a);
        }
        return static_cast<double>(hit) /
               static_cast<double>(q->answers.size());
      };
      acc_full += recall(*fr);
      acc_pruned += recall(*pr);
    }
    std::printf("%-7s | %8.1f%% %8.1f%% | %11.3f %11.3f\n",
                halk::query::StructureName(s).c_str(),
                100.0 * acc_full / n, 100.0 * acc_pruned / n, ms_full / n,
                ms_pruned / n);
  }
  return 0;
}
