// Table I: MRR (%) for answering queries WITHOUT negation on the three
// benchmark-KG stand-ins — HaLk vs ConE, NewLook, MLPMix over the 12
// EPFO+difference structures (ip, pi, 2u, up, dp unseen in training).

#include "bench_common.h"

int main() {
  halk::bench::Scale scale = halk::bench::Scale::FromEnv();
  halk::bench::RunModelComparison(
      "Table I: MRR (%) for queries without negation",
      {"halk", "cone", "newlook", "mlpmix"},
      halk::query::EpfoDifferenceStructures(), /*use_mrr=*/true, scale);
  return 0;
}
