// Serving-engine throughput study: single-threaded unbatched evaluation
// (today's Evaluator loop, as every example drives it) vs. the QueryServer
// with micro-batching, and with the canonical-fingerprint answer cache on
// top. The workload is a skewed stream over a pool of distinct queries —
// the traffic shape a production endpoint sees, where popular queries
// repeat. Prints a human-readable table, the server's metrics dump, and a
// final machine-readable JSON line for longitudinal perf tracking.
//
//   $ ./bench/bench_serving_throughput            # full scale
//   $ HALK_BENCH_FAST=1 ./bench/bench_serving_throughput
//
// The model is left untrained: serving throughput depends on the embedding
// and scoring computation, not on the learned weights.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "halk/halk.h"
#include "net/http_server.h"
#include "net/telemetry.h"

namespace {

using Clock = std::chrono::steady_clock;
using halk::query::StructureId;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Workload {
  // Distinct grounded queries and the (skewed) request sequence over them.
  std::vector<halk::query::GroundedQuery> pool;
  std::vector<size_t> sequence;
};

Workload MakeWorkload(const halk::kg::KnowledgeGraph& kg, int pool_size,
                      int num_requests, uint64_t seed) {
  Workload w;
  halk::query::QuerySampler sampler(&kg, seed);
  const std::vector<StructureId> structures = {
      StructureId::k2p, StructureId::k3p, StructureId::k2i,
      StructureId::kIp, StructureId::kPip};
  for (int i = 0; i < pool_size; ++i) {
    w.pool.push_back(
        sampler.Sample(structures[static_cast<size_t>(i) % structures.size()])
            .ValueOrDie());
  }
  // Quadratically skewed popularity: low indices repeat often, the tail is
  // cold — a crude stand-in for Zipf request traffic.
  halk::Rng rng(seed + 1);
  for (int i = 0; i < num_requests; ++i) {
    const double u = rng.Uniform();
    w.sequence.push_back(static_cast<size_t>(
        static_cast<double>(pool_size) * u * u * 0.999));
  }
  return w;
}

double RunBaseline(halk::core::QueryModel* model, const Workload& w,
                   int64_t k) {
  halk::core::Evaluator evaluator(model);
  const Clock::time_point start = Clock::now();
  for (size_t idx : w.sequence) {
    std::vector<int64_t> top = evaluator.TopK(w.pool[idx].graph, k);
    if (top.empty()) std::abort();
  }
  return static_cast<double>(w.sequence.size()) / SecondsSince(start);
}

double RunServed(halk::serving::QueryServer* server, const Workload& w,
                 int64_t k) {
  const Clock::time_point start = Clock::now();
  std::vector<std::future<halk::Result<halk::serving::TopKAnswer>>> futures;
  futures.reserve(w.sequence.size());
  for (size_t idx : w.sequence) {
    auto r = server->Submit(w.pool[idx].graph, k);
    HALK_CHECK(r.ok()) << r.status().ToString();
    futures.push_back(std::move(*r));
  }
  for (auto& f : futures) {
    auto answer = f.get();
    HALK_CHECK(answer.ok()) << answer.status().ToString();
  }
  return static_cast<double>(w.sequence.size()) / SecondsSince(start);
}

/// Blocking loopback HTTP GET (what a Prometheus scraper does to the
/// embedded telemetry server); "" on any socket error.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// Appends shared 3p chain `i` of the library to `g` and returns its node:
// the same (anchor, r1, r2, r3) tuple recurs across every query that picks
// chain `i`, which is exactly what the planner's cross-request dedup and
// the subtree cache exploit.
int AddLibraryChain(halk::query::QueryGraph* g, int i, int64_t num_entities,
                    int64_t num_relations) {
  const int64_t anchor = (3 + 7 * static_cast<int64_t>(i)) % num_entities;
  const int64_t r1 = static_cast<int64_t>(i) % num_relations;
  const int64_t r2 = static_cast<int64_t>(2 * i + 1) % num_relations;
  const int64_t r3 = static_cast<int64_t>(3 * i + 2) % num_relations;
  return g->AddProjection(
      g->AddProjection(g->AddProjection(g->AddAnchor(anchor), r1), r2), r3);
}

// Diverse workload: every request is a *distinct* ipp-over-3p-chains query
// p(i(chain_i, chain_j, chain_k), tail) — the answer cache never hits —
// but the chains come from a small shared library, so subtrees recur
// heavily across requests. This is the traffic shape the planner is built
// for; the legacy path re-embeds every branch from scratch.
std::vector<halk::query::QueryGraph> MakeDiverseWorkload(
    int64_t num_entities, int64_t num_relations, int num_requests) {
  std::vector<halk::query::QueryGraph> queries;
  const int library_size = 16;
  for (int i = 0; i < library_size; ++i) {
    for (int j = i + 1; j < library_size; ++j) {
      for (int m = j + 1; m < library_size; ++m) {
        for (int64_t tail = 0; tail < num_relations; ++tail) {
          if (static_cast<int>(queries.size()) >= num_requests) {
            return queries;
          }
          halk::query::QueryGraph g;
          const int a = AddLibraryChain(&g, i, num_entities, num_relations);
          const int b = AddLibraryChain(&g, j, num_entities, num_relations);
          const int c = AddLibraryChain(&g, m, num_entities, num_relations);
          g.SetTarget(g.AddProjection(g.AddIntersection({a, b, c}), tail));
          queries.push_back(std::move(g));
        }
      }
    }
  }
  return queries;
}

double RunDiverse(halk::serving::QueryServer* server,
                  const std::vector<halk::query::QueryGraph>& queries,
                  int64_t k) {
  const Clock::time_point start = Clock::now();
  std::vector<std::future<halk::Result<halk::serving::TopKAnswer>>> futures;
  futures.reserve(queries.size());
  for (const halk::query::QueryGraph& g : queries) {
    auto r = server->Submit(g, k);
    HALK_CHECK(r.ok()) << r.status().ToString();
    futures.push_back(std::move(*r));
  }
  for (auto& f : futures) {
    auto answer = f.get();
    HALK_CHECK(answer.ok()) << answer.status().ToString();
  }
  return static_cast<double>(queries.size()) / SecondsSince(start);
}

}  // namespace

int main() {
  using namespace halk;
  const bool fast = std::getenv("HALK_BENCH_FAST") != nullptr;
  // HALK_BENCH_PROFILE=1 reports where serving time went (the `profile`
  // field of the JSON line) — a profiled run is a different workload, so
  // never compare its qps against an unprofiled one.
  bench::EnableProfilerFromEnv();
  const int num_requests = fast ? 300 : 2000;
  const int pool_size = fast ? 32 : 96;
  const int64_t k = 10;

  kg::SyntheticKgOptions opt;
  opt.num_entities = 400;
  opt.num_relations = 10;
  opt.num_triples = 2400;
  opt.seed = 7;
  kg::Dataset dataset = kg::GenerateSyntheticKg(opt);

  core::ModelConfig config;
  config.num_entities = dataset.train.num_entities();
  config.num_relations = dataset.train.num_relations();
  config.dim = 16;
  config.hidden = 32;
  config.seed = 3;
  core::HalkModel model(config, nullptr);

  Workload workload =
      MakeWorkload(dataset.train, pool_size, num_requests, 101);
  std::printf(
      "serving throughput: %d requests over %d distinct queries, k=%lld\n",
      num_requests, pool_size, static_cast<long long>(k));

  const double qps_baseline = RunBaseline(&model, workload, k);
  std::printf("baseline  (1 thread, unbatched, uncached): %8.1f qps\n",
              qps_baseline);

  serving::ServerOptions batch_only;
  batch_only.num_workers = 4;
  batch_only.max_batch_size = 16;
  batch_only.queue_capacity = static_cast<size_t>(num_requests);
  batch_only.enable_cache = false;
  double qps_batched = 0.0;
  {
    serving::QueryServer server(&model, &dataset.train, batch_only);
    qps_batched = RunServed(&server, workload, k);
  }
  std::printf("served    (4 workers, batch 16, no cache): %8.1f qps (%.2fx)\n",
              qps_batched, qps_batched / qps_baseline);

  // The tracing-disabled contract (one relaxed atomic load per request):
  // attaching a disabled tracer must not move throughput measurably.
  obs::Tracer tracer;  // never enabled
  serving::ServerOptions traced_off = batch_only;
  traced_off.tracer = &tracer;
  double qps_tracer_off = 0.0;
  {
    serving::QueryServer server(&model, &dataset.train, traced_off);
    qps_tracer_off = RunServed(&server, workload, k);
  }
  std::printf("served    (ditto, tracer attached, off)  : %8.1f qps (%.4fx "
              "of no-tracer)\n",
              qps_tracer_off, qps_tracer_off / qps_batched);

  // Telemetry-plane overhead A/B, identical server config on both sides:
  // the same open-loop request stream runs once with the embedded HTTP
  // server bound but idle, and once while a scraper loops GET /metrics
  // against it — the gap is the cost of concurrent DumpPrometheus scrapes.
  double qps_scrape_off = 0.0;
  double qps_scrape_on = 0.0;
  int64_t scrapes = 0;
  {
    serving::QueryServer server(&model, &dataset.train, batch_only);
    net::HttpServer http;  // loopback, ephemeral port
    net::TelemetrySources sources;
    sources.metrics = server.metrics();
    net::RegisterTelemetryEndpoints(&http, sources);
    const Status started = http.Start();
    HALK_CHECK(started.ok()) << started.ToString();
    qps_scrape_off = RunServed(&server, workload, k);
    std::atomic<bool> stop_scraping{false};
    std::thread scraper([&] {
      // order: plain stop flag; the scraper only needs to notice eventually.
      while (!stop_scraping.load(std::memory_order_relaxed)) {
        if (!HttpGet(http.port(), "/metrics").empty()) ++scrapes;
      }
    });
    qps_scrape_on = RunServed(&server, workload, k);
    // order: release pairs with the scraper's relaxed poll loop exit.
    stop_scraping.store(true, std::memory_order_release);
    scraper.join();
  }
  std::printf("served    (ditto, scrape endpoint idle)  : %8.1f qps\n",
              qps_scrape_off);
  std::printf("served    (ditto, /metrics scraped, %4lld): %8.1f qps (%.4fx "
              "of idle)\n",
              static_cast<long long>(scrapes), qps_scrape_on,
              qps_scrape_on / qps_scrape_off);

  serving::ServerOptions full = batch_only;
  full.enable_cache = true;
  full.cache_capacity = 4096;
  serving::QueryServer server(&model, &dataset.train, full);
  const double qps_served = RunServed(&server, workload, k);
  std::printf("served    (4 workers, batch 16, cache on): %8.1f qps (%.2fx)\n",
              qps_served, qps_served / qps_baseline);

  // Diverse low-cache-hit A/B: distinct large queries built from a shared
  // subtree library, served once each. The answer cache is useless here;
  // the gap between the two runs is pure planner work (cross-request
  // dedup + warm subtree cache).
  const std::vector<query::QueryGraph> diverse = MakeDiverseWorkload(
      config.num_entities, config.num_relations, num_requests);
  // A production-sized operator stack: with dim 16 the per-entity scoring
  // pass (shared by both paths) swamps the embedding work the planner
  // saves, so the A/B runs its own wider model. Both sides use it, so the
  // comparison stays apples-to-apples.
  core::ModelConfig diverse_config = config;
  diverse_config.dim = 64;
  diverse_config.hidden = 128;
  diverse_config.seed = 11;
  core::HalkModel diverse_model(diverse_config, nullptr);
  serving::ServerOptions diverse_opt = full;
  serving::ServerOptions legacy_opt = diverse_opt;
  legacy_opt.use_planner = false;
  double qps_diverse_legacy = 0.0;
  {
    serving::QueryServer legacy(&diverse_model, &dataset.train, legacy_opt);
    qps_diverse_legacy = RunDiverse(&legacy, diverse, k);
  }
  serving::QueryServer planner_server(&diverse_model, &dataset.train,
                                      diverse_opt);
  const double qps_diverse_planner = RunDiverse(&planner_server, diverse, k);
  const double speedup_diverse = qps_diverse_planner / qps_diverse_legacy;
  serving::MetricsRegistry* plan_metrics = planner_server.metrics();
  const int64_t plan_total = plan_metrics->CounterValue("plan.nodes");
  const int64_t plan_unique = plan_metrics->CounterValue("plan.unique_nodes");
  const double dedup_ratio =
      plan_total == 0 ? 0.0
                      : 1.0 - static_cast<double>(plan_unique) /
                                  static_cast<double>(plan_total);
  const int64_t sub_hits =
      plan_metrics->CounterValue("plan.subtree_cache_hits");
  const int64_t sub_misses =
      plan_metrics->CounterValue("plan.subtree_cache_misses");
  const double subtree_hit_rate =
      sub_hits + sub_misses == 0
          ? 0.0
          : static_cast<double>(sub_hits) /
                static_cast<double>(sub_hits + sub_misses);
  std::printf(
      "\ndiverse   (%zu distinct 3ipp queries, shared subtree library)\n"
      "  legacy  (use_planner=off)               : %8.1f qps\n"
      "  planner (dedup %.2f, subtree hits %.2f) : %8.1f qps (%.2fx)\n",
      diverse.size(), qps_diverse_legacy, dedup_ratio, subtree_hit_rate,
      qps_diverse_planner, speedup_diverse);

  // Analytics-plane overhead A/B, identical config on both sides: the
  // diverse stream once with the query-stats plane off, once with it on
  // (per-node sampled actuals, q-error observation, fingerprint-keyed
  // aggregation). The ratio is the cost of EXPLAIN ANALYZE-grade actuals
  // on every planned chunk; the serving gate keeps it >= 0.95.
  serving::ServerOptions analytics_off_opt = diverse_opt;
  analytics_off_opt.analytics = false;
  analytics_off_opt.query_stats_capacity = 0;
  double qps_analytics_off = 0.0;
  {
    serving::QueryServer off(&diverse_model, &dataset.train,
                             analytics_off_opt);
    qps_analytics_off = RunDiverse(&off, diverse, k);
  }
  serving::ServerOptions analytics_on_opt = diverse_opt;
  analytics_on_opt.analytics = true;
  double qps_analytics_on = 0.0;
  double worst_qerror = 0.0;
  size_t stats_structures = 0;
  {
    serving::QueryServer on(&diverse_model, &dataset.train, analytics_on_opt);
    qps_analytics_on = RunDiverse(&on, diverse, k);
    HALK_CHECK(on.query_stats() != nullptr);
    stats_structures = on.query_stats()->size();
    for (const auto& s : on.query_stats()->TopByTime(16)) {
      worst_qerror = std::max(worst_qerror, s.worst_qerror);
    }
  }
  const double analytics_ratio = qps_analytics_on / qps_analytics_off;
  std::printf(
      "analytics (per-node actuals + stats store)\n"
      "  off                                     : %8.1f qps\n"
      "  on      (%3zu structures, worst q %.1f)  : %8.1f qps (%.4fx of "
      "off)\n",
      qps_analytics_off, stats_structures, worst_qerror, qps_analytics_on,
      analytics_ratio);

  serving::MetricsRegistry* metrics = server.metrics();
  const int64_t hits = metrics->CounterValue("serving.cache_hits");
  const int64_t misses = metrics->CounterValue("serving.cache_misses");
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  serving::Histogram* latency =
      metrics->GetHistogram("serving.latency_us", {1.0});
  serving::Histogram* batch_size =
      metrics->GetHistogram("serving.batch_size", {1.0});

  std::printf("\n--- cache-on server metrics ---\n%s\n",
              server.DumpMetrics().c_str());

  // One machine-readable line for the perf trajectory (keep keys stable).
  bench::BenchJson json("serving_throughput");
  json.Set("requests", num_requests)
      .Set("distinct", pool_size)
      .Set("workers", batch_only.num_workers)
      .Set("max_batch", static_cast<int>(batch_only.max_batch_size))
      .Set("qps_baseline", qps_baseline, 1)
      .Set("qps_batched", qps_batched, 1)
      .Set("qps_tracer_off", qps_tracer_off, 1)
      .Set("qps_served", qps_served, 1)
      .Set("speedup_batched", qps_batched / qps_baseline)
      .Set("speedup_served", qps_served / qps_baseline)
      .Set("tracer_off_ratio", qps_tracer_off / qps_batched)
      .Set("qps_scrape_off", qps_scrape_off, 1)
      .Set("qps_scrape_on", qps_scrape_on, 1)
      .Set("scrape_ratio", qps_scrape_on / qps_scrape_off)
      .Set("scrapes", scrapes);
  // p50/p95/p99 straight from the server's own latency histogram — the
  // instrumented path, not a bench-side stopwatch.
  bench::SetLatencyQuantiles(&json, *latency);
  json.Set("cache_hit_rate", hit_rate)
      .Set("mean_batch_size", batch_size->mean(), 2)
      .Set("diverse_requests", static_cast<int>(diverse.size()))
      .Set("qps_diverse_legacy", qps_diverse_legacy, 1)
      .Set("qps_diverse_planner", qps_diverse_planner, 1)
      .Set("speedup_diverse_planner", speedup_diverse)
      .Set("dedup_ratio", dedup_ratio)
      .Set("subtree_cache_hit_rate", subtree_hit_rate)
      .Set("qps_analytics_off", qps_analytics_off, 1)
      .Set("qps_analytics_on", qps_analytics_on, 1)
      .Set("analytics_ratio", analytics_ratio)
      .Set("analytics_worst_qerror", worst_qerror)
      .Emit();
  return 0;
}
